package serve

import (
	"time"

	"nfactor/internal/obsrv"
	"nfactor/internal/telemetry"
)

// Observability wiring: the serve loop owns the obsrv collectors (one
// set per generation — gap matchers and drift baselines are properties
// of the installed model) and implements obsrv.Observable so the HTTP
// plane can watch a live server without touching the hot path. The
// collectors run inside serveBatch on the serving goroutine;
// cross-goroutine readers only ever see atomically published snapshots
// or barrier-quiesced state.

// obsInfo describes the generation's stages to the collector.
func obsInfo(stages []genStage) []obsrv.StageInfo {
	out := make([]obsrv.StageInfo, len(stages))
	for i := range stages {
		st := &stages[i]
		out[i] = obsrv.StageInfo{Name: st.name, Model: st.m, Config: st.config, Init: st.init}
	}
	return out
}

// installCollector builds fresh collectors for the (newly installed)
// generation and invalidates the published observability snapshot.
func (s *Server) installCollector() {
	if s.cfg.Obs == nil {
		return
	}
	s.obs = obsrv.NewCollector(obsInfo(s.gen.stages), *s.cfg.Obs)
	s.pubObs = nil
}

// swapEventOf converts a swap report into the audit-trail event.
func swapEventOf(rep *SwapReport, packetsServed int64) obsrv.SwapEvent {
	return obsrv.SwapEvent{
		Time:             time.Now(),
		PacketsServed:    packetsServed,
		From:             rep.From,
		To:               rep.To,
		Name:             rep.Name,
		Blocked:          rep.Blocked,
		Reason:           rep.Reason,
		GuardDiff:        rep.GuardDiff,
		DivergencePacket: rep.DivergencePacket,
		WindowLen:        rep.WindowLen,
		EntriesAdded:     rep.EntriesAdded,
		EntriesRemoved:   rep.EntriesRemoved,
		Decisions:        rep.Decisions,
		Carried:          rep.Carried,
		Reset:            rep.Reset,
		PauseNs:          rep.Pause.Nanoseconds(),
	}
}

// StageSnapshots returns the most recently published per-stage engine
// telemetry (nil before the first publish with collectors enabled).
func (s *Server) StageSnapshots() []telemetry.Snapshot { return s.pub.Load().Stages }

// Observed returns the most recently published collector snapshot (nil
// when Config.Obs is unset).
func (s *Server) Observed() *obsrv.Snapshot { return s.pub.Load().Obs }

// SwapEvents returns the bounded swap audit trail, oldest first (empty
// when Config.Obs is unset).
func (s *Server) SwapEvents() []obsrv.SwapEvent {
	if s.swapLog == nil {
		return nil
	}
	return s.swapLog.Events()
}

// inspectTicket asks the serving goroutine for a quiesced state walk.
type inspectTicket struct {
	ch chan []obsrv.StageState
}

// InspectState walks the live per-variable state, classified by the
// dataplane lowering. While the serving loop runs, the request is
// serviced at the next batch barrier — the quiescence point, so the
// walk races nothing and sees exactly the state between two batches.
// Returns nil when no barrier arrives inside the timeout (a stalled
// source) or the ticket queue is full. When the loop is not running
// (before Run, after it returns), the walk runs directly.
func (s *Server) InspectState(timeout time.Duration) []obsrv.StageState {
	if !s.running.Load() {
		return s.inspectNow()
	}
	t := &inspectTicket{ch: make(chan []obsrv.StageState, 1)}
	select {
	case s.inspectCh <- t:
	default:
		return nil
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case states := <-t.ch:
		return states
	case <-timer.C:
		return nil
	}
}

// inspectNow builds the state walk on the caller. Only safe when the
// serving goroutine is quiesced: at a barrier, or not running at all.
// Uses the bounded stageViews export — an inspection must cost
// O(vars + samples) at the barrier, never O(table): with a full-copy
// export a single /state hit against a large NAT table stalls the
// serving loop for tens of milliseconds.
func (s *Server) inspectNow() []obsrv.StageState {
	live := s.gen.plane.stageViews(s.stateSample())
	out := make([]obsrv.StageState, len(live))
	for i := range live {
		st := &s.gen.stages[i]
		out[i] = obsrv.BuildStageState(i, st.name, st.cls, live[i], s.stateSample())
	}
	return out
}

func (s *Server) stateSample() int {
	if s.cfg.Obs != nil && s.cfg.Obs.GapSamples > 0 {
		return s.cfg.Obs.GapSamples
	}
	return 8
}

// serviceInspect answers every queued inspection ticket with one shared
// walk. Runs at the batch barrier on the serving goroutine.
func (s *Server) serviceInspect() {
	var states []obsrv.StageState
	for {
		select {
		case t := <-s.inspectCh:
			if states == nil {
				states = s.inspectNow()
			}
			t.ch <- states
		default:
			return
		}
	}
}
