package serve

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"nfactor/internal/chain"
	"nfactor/internal/dataplane"
	"nfactor/internal/model"
	"nfactor/internal/nfs"
	"nfactor/internal/obsrv"
	"nfactor/internal/workload"
)

// --- gap-hit ground truth ---------------------------------------------

// TestGapHitGroundTruthCorpus proves the /coverage gap-hit counter exact
// against the NFL103 witness generator, corpus-wide: every corpus model
// is pruned of its explicit drop entries (opening exactly the gap those
// drops covered), its adversarial gap trace is served, and every single
// packet must land in the implicit default AND be counted as a gap hit
// — no undercounting, no overcounting, no entry fired.
func TestGapHitGroundTruthCorpus(t *testing.T) {
	withGap := 0
	for _, name := range nfs.Names() {
		an := analyzeNF(t, name)
		config, state, err := an.ConfigAndState(nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pruned := &model.Model{
			NFName: an.Model.NFName, PktVar: an.Model.PktVar,
			CfgVars: an.Model.CfgVars, OISVars: an.Model.OISVars,
		}
		for _, e := range an.Model.Entries {
			if !e.Dropped() {
				pruned.Entries = append(pruned.Entries, e)
			}
		}
		trace := workload.New(11).GapTrace(pruned, config, state, 32)
		if len(trace) == 0 {
			continue // forwarding entries cover the space, or no member concretized
		}
		withGap++

		srv, err := New(Candidate{
			Stages: []chain.NamedModel{{Name: name, Model: pruned, Config: config, State: state}},
		}, Config{
			Source: NewTraceSource(trace, false, 0),
			Obs:    &obsrv.Options{},
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := srv.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		st := srv.Stats()
		if st.Packets != int64(len(trace)) {
			t.Fatalf("%s: served %d packets, want %d", name, st.Packets, len(trace))
		}
		if st.EpochViolations != 0 {
			t.Errorf("%s: %d epoch violations", name, st.EpochViolations)
		}
		snap := srv.Observed()
		if snap == nil || len(snap.Stages) != 1 {
			t.Fatalf("%s: no published collector snapshot", name)
		}
		gs := &snap.Stages[0]
		if gs.Witness == "" {
			t.Errorf("%s: pruned model compiled no gap witness", name)
		}
		if gs.DefaultHits != int64(len(trace)) {
			t.Errorf("%s: default hits = %d, want %d (every gap packet must die on the implicit default)",
				name, gs.DefaultHits, len(trace))
		}
		if gs.GapHits != int64(len(trace)) {
			t.Errorf("%s: gap hits = %d, want %d (the counter must be exact against ground truth)",
				name, gs.GapHits, len(trace))
		}
		if len(gs.Samples) == 0 {
			t.Errorf("%s: no gap packet samples captured", name)
		}
		for _, stage := range srv.StageSnapshots() {
			for e, hits := range stage.EntryHits {
				if hits != 0 {
					t.Errorf("%s: entry %d fired %d times on gap-only traffic", name, e, hits)
				}
			}
		}
	}
	if withGap == 0 {
		t.Fatal("no corpus NF produced a gap trace; ground truth unexercised")
	}
}

// --- concurrent scraping under swap load ------------------------------

// obsPromSample matches one Prometheus text-exposition sample line.
var obsPromSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eE]+$`)

func checkScrapeParses(t *testing.T, body string) {
	t.Helper()
	n := 0
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !obsPromSample.MatchString(line) {
			t.Errorf("unparseable metric line: %q", line)
		}
		n++
	}
	if n == 0 {
		t.Error("scrape body carried no samples")
	}
}

// TestScrapeUnderSwapLoad hammers every observability endpoint from
// concurrent goroutines while the server swaps generations under
// looping traffic, at shard counts 1, 2 and 4. Run under -race (the
// Makefile race target covers ./internal/serve) this is the torn-
// snapshot detector; even without -race it asserts the per-packet
// consistency invariant held (epoch_violations=0), the swaps landed in
// the audit trail, and a final scrape still parses.
func TestScrapeUnderSwapLoad(t *testing.T) {
	base := analyzeNF(t, "firewall")
	next := firewallExtraRule(t)
	trace := firewallTrace(512)

	for _, shards := range []int{1, 2, 4} {
		srv, err := New(Candidate{Analysis: base, Shards: shards}, Config{
			Source:    NewTraceSource(trace, true, 60000),
			BatchSize: 32,
			Obs:       &obsrv.Options{DriftWindow: 512},
		})
		if err != nil {
			t.Fatal(err)
		}
		h, err := obsrv.NewHTTP("127.0.0.1:0", srv, obsrv.HTTPConfig{NF: "firewall"})
		if err != nil {
			t.Fatal(err)
		}
		baseURL := "http://" + h.Addr()

		done := runServer(srv)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for _, path := range []string{"/metrics", "/state", "/coverage", "/swaps"} {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := http.Get(baseURL + path)
					if err != nil {
						return // server drained
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}(path)
		}

		// Swap back and forth while the scrapers run.
		swaps := 0
		for i := 0; i < 4; i++ {
			cand := Candidate{Analysis: next, Shards: shards, Name: "firewall-v2"}
			if i%2 == 1 {
				cand = Candidate{Analysis: base, Shards: shards, Name: "firewall-v1"}
			}
			rep := <-srv.RequestSwap(SwapRequest{Candidate: cand, AllowBehaviorChange: true})
			if !rep.Blocked {
				swaps++
			}
		}

		if err := <-done; err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		close(stop)
		wg.Wait()

		st := srv.Stats()
		if st.EpochViolations != 0 {
			t.Errorf("shards=%d: %d epoch violations under concurrent scraping", shards, st.EpochViolations)
		}
		if swaps == 0 {
			t.Errorf("shards=%d: no swap applied", shards)
		}
		ev := srv.SwapEvents()
		if len(ev) < swaps {
			t.Errorf("shards=%d: audit trail holds %d events, want >= %d", shards, len(ev), swaps)
		}

		// The server drained but the listener still answers: a final
		// scrape must render a complete, parseable exposition.
		resp, err := http.Get(baseURL + "/metrics")
		if err != nil {
			t.Fatalf("shards=%d: final scrape: %v", shards, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		checkScrapeParses(t, string(body))
		h.Close()
	}
}

// TestScrapeTimeoutAfterDrain pins the /state liveness contract: once
// Run returns, inspection takes the direct path and still answers.
func TestScrapeTimeoutAfterDrain(t *testing.T) {
	srv, err := New(Candidate{Analysis: analyzeNF(t, "firewall")}, Config{
		Source: NewTraceSource(firewallTrace(64), false, 0),
		Obs:    &obsrv.Options{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Run(); err != nil {
		t.Fatal(err)
	}
	states := srv.InspectState(10 * time.Millisecond)
	if len(states) == 0 {
		t.Fatal("drained server refused a direct state walk")
	}
	found := false
	for _, v := range states[0].Vars {
		if v.Name == "conns" {
			found = true
		}
	}
	if !found {
		t.Errorf("state walk missing the conns table: %+v", states[0].Vars)
	}
}

// --- chainEntry stage attribution -------------------------------------

// TestChainEntryDefaultStage pins the stage-attribution rules the
// collector depends on: the deepest reached stage decides, an explicit
// entry never reports a default stage, and unreached stages are skipped.
func TestChainEntryDefaultStage(t *testing.T) {
	nr := dataplane.EntryNotReached
	cases := []struct {
		entries []int
		dropped bool
		entry   int
		ds      int
	}{
		{[]int{3}, false, 3, -1},        // explicit forward
		{[]int{2}, true, 2, -1},         // explicit drop entry
		{[]int{-1}, true, -1, 0},        // single-stage implicit default
		{[]int{0, -1}, true, -1, 1},     // killed by stage 1's default
		{[]int{-1, nr}, true, -1, 0},    // killed at stage 0, stage 1 never reached
		{[]int{0, 1, -1}, true, -1, 2},  // deep chain default
		{[]int{nr, nr}, true, -1, -1},   // nothing reached
		{[]int{0, 4, nr}, false, 4, -1}, // forwarded mid-chain view
	}
	for i, c := range cases {
		o := &dataplane.ChainOutput{Entries: c.entries, Dropped: c.dropped}
		entry, ds := chainEntry(o)
		if entry != c.entry || ds != c.ds {
			t.Errorf("case %d %v dropped=%v: got (%d,%d), want (%d,%d)",
				i, c.entries, c.dropped, entry, ds, c.entry, c.ds)
		}
	}
}
