// Package serve is the live serving surface of nfactor: a long-running
// loop that pulls packets from a Source, pushes per-packet verdicts to
// a Sink, and can hot-swap the running engine for a freshly
// re-synthesized generation without restarting — with per-packet
// generation consistency (every packet observes a consistently-old or
// consistently-new engine, never a mix; Output epochs prove it), state
// carry-over for session state that survives the model change, and a
// differential gate that refuses a swap whose candidate diverges from
// the running generation over a window of recently served traffic.
//
// It also defines the Replayer/Explainer interfaces the root facade
// re-exports: the one replay surface every execution backend — original
// program, model instance, compiled engine, sharded engine, fused chain
// — satisfies.
package serve

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"nfactor/internal/netpkt"
	"nfactor/internal/telemetry"
)

// Replayer is the unified replay surface: every execution engine
// processes packets one at a time with evolving state and exports the
// same telemetry Snapshot. Replayers are single-goroutine objects.
type Replayer interface {
	// Process runs one packet and returns its verdict. State evolves
	// across calls.
	Process(*netpkt.Packet) (netpkt.Verdict, error)
	// Snapshot exports the telemetry accumulated so far.
	Snapshot() telemetry.Snapshot
}

// Explainer is the optional provenance extension of Replayer: table
// backends (model, compiled, sharded, chain) can explain each verdict
// with the full guard trail. The program backend does not implement it
// (the original source has no match/action table to trace).
type Explainer interface {
	// ProcessExplain is Process plus the packet's why-trace. It counts
	// in the same telemetry as Process.
	ProcessExplain(*netpkt.Packet) (netpkt.Verdict, *telemetry.PacketTrace, error)
}

// --- sources ----------------------------------------------------------

// Source feeds packets to a Server. Implementations are read from a
// single goroutine (the serving loop).
type Source interface {
	// Next fills p with the next packet to serve. ok=false means the
	// source is exhausted and the server stops cleanly. A non-nil error
	// with ok=true reports a malformed input that was skipped.
	Next(p *netpkt.Packet) (ok bool, err error)
}

// TraceSource serves a fixed trace, once or looping forever.
type TraceSource struct {
	trace []netpkt.Packet
	loop  bool
	limit int64 // max packets to emit (0: len(trace) once, or forever when looping)
	at    int64
}

// NewTraceSource serves trace once. With loop, it restarts from the top
// after the last packet until limit packets have been emitted
// (limit 0: forever).
func NewTraceSource(trace []netpkt.Packet, loop bool, limit int64) *TraceSource {
	return &TraceSource{trace: trace, loop: loop, limit: limit}
}

func (t *TraceSource) Next(p *netpkt.Packet) (bool, error) {
	if len(t.trace) == 0 || (t.limit > 0 && t.at >= t.limit) {
		return false, nil
	}
	if !t.loop && t.at >= int64(len(t.trace)) {
		return false, nil
	}
	*p = t.trace[t.at%int64(len(t.trace))]
	t.at++
	return true, nil
}

// PacedSource rate-limits another source to a target packets-per-second
// budget, so a looping trace can stand in for live traffic (the CI
// smoke daemon serves a bounded trace for tens of seconds instead of
// draining it in milliseconds). Pacing is token-bucket style against
// the wall clock: Next sleeps only when the loop runs ahead of budget,
// so a slow inner source never accumulates a burst debt larger than
// one second of traffic.
type PacedSource struct {
	src   Source
	pps   float64
	start time.Time
	sent  int64
}

// NewPacedSource paces src at pps packets per second (pps <= 0 means
// no pacing).
func NewPacedSource(src Source, pps float64) *PacedSource {
	return &PacedSource{src: src, pps: pps}
}

func (ps *PacedSource) Next(p *netpkt.Packet) (bool, error) {
	if ps.pps > 0 {
		if ps.start.IsZero() {
			ps.start = time.Now()
		}
		due := ps.start.Add(time.Duration(float64(ps.sent) / ps.pps * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		} else if d < -time.Second {
			// Ran behind by over a second (stalled inner source, paused
			// process): forgive the debt instead of bursting to catch up.
			ps.start = time.Now()
			ps.sent = 0
		}
	}
	ok, err := ps.src.Next(p)
	if ok {
		ps.sent++
	}
	return ok, err
}

// ReaderSource parses trace lines (netpkt.ParseLine) from a stream —
// stdin, a file, a pipe. Blank lines and '#' comments are skipped;
// malformed lines are counted and skipped.
type ReaderSource struct {
	sc        *bufio.Scanner
	malformed atomic.Int64
}

// NewReaderSource wraps r in a line scanner.
func NewReaderSource(r io.Reader) *ReaderSource {
	return &ReaderSource{sc: bufio.NewScanner(r)}
}

// Malformed returns how many lines failed to parse so far.
func (r *ReaderSource) Malformed() int64 { return r.malformed.Load() }

func (r *ReaderSource) Next(p *netpkt.Packet) (bool, error) {
	for r.sc.Scan() {
		line := r.sc.Text()
		if isSkippable(line) {
			continue
		}
		pkt, err := netpkt.ParseLine(line)
		if err != nil {
			r.malformed.Add(1)
			return true, err
		}
		*p = pkt
		return true, nil
	}
	return false, nil
}

// UDPSource serves one trace line per UDP datagram. Close makes the
// next Next report exhaustion.
type UDPSource struct {
	conn      net.PacketConn
	buf       []byte
	malformed atomic.Int64
}

// NewUDPSource listens on addr (e.g. ":9099").
func NewUDPSource(addr string) (*UDPSource, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	return &UDPSource{conn: conn, buf: make([]byte, 64*1024)}, nil
}

// Addr returns the bound listen address.
func (u *UDPSource) Addr() net.Addr { return u.conn.LocalAddr() }

// Close unblocks a pending read and exhausts the source.
func (u *UDPSource) Close() error { return u.conn.Close() }

// Malformed returns how many datagrams failed to parse so far.
func (u *UDPSource) Malformed() int64 { return u.malformed.Load() }

func (u *UDPSource) Next(p *netpkt.Packet) (bool, error) {
	for {
		n, _, err := u.conn.ReadFrom(u.buf)
		if err != nil {
			return false, nil // closed: clean exhaustion
		}
		line := string(u.buf[:n])
		if isSkippable(line) {
			continue
		}
		pkt, perr := netpkt.ParseLine(line)
		if perr != nil {
			u.malformed.Add(1)
			return true, perr
		}
		*p = pkt
		return true, nil
	}
}

func isSkippable(line string) bool {
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case ' ', '\t', '\r', '\n':
			continue
		case '#':
			return true
		default:
			return false
		}
	}
	return true
}

// --- sinks ------------------------------------------------------------

// Sink receives each served packet's outcome, in serving order, from
// the serving goroutine.
type Sink interface {
	Emit(seq int64, p *netpkt.Packet, o *Outcome) error
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(seq int64, p *netpkt.Packet, o *Outcome) error

// Emit calls f.
func (f SinkFunc) Emit(seq int64, p *netpkt.Packet, o *Outcome) error { return f(seq, p, o) }

// NewWriterSink renders verdict lines in nfreplay's replay format.
func NewWriterSink(w io.Writer) Sink {
	bw := bufio.NewWriter(w)
	return SinkFunc(func(seq int64, p *netpkt.Packet, o *Outcome) error {
		if _, err := fmt.Fprintf(bw, "%6d  %-55s %s\n", seq, p, o.Verdict); err != nil {
			return err
		}
		return bw.Flush()
	})
}

// Discard drops every outcome (benchmarks, smoke runs with -q).
var Discard Sink = SinkFunc(func(int64, *netpkt.Packet, *Outcome) error { return nil })
