package serve

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/netpkt"
	"nfactor/internal/nfs"
	"nfactor/internal/workload"
)

// --- helpers ----------------------------------------------------------

func analyzeNF(t *testing.T, name string) *core.Analysis {
	t.Helper()
	an, err := core.Analyze(name, nfs.MustLoad(name).Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func analyzeSource(t *testing.T, name, src string) *core.Analysis {
	t.Helper()
	nf, err := nfs.FromSource(name, src)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.Analyze(name, nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

// firewallWiderConfig re-synthesizes the firewall with one more egress
// port in its configuration map: same entry table, different concrete
// config — a behavior change the gate must attribute to the egress
// guard.
func firewallWiderConfig(t *testing.T) *core.Analysis {
	t.Helper()
	src := strings.Replace(nfs.MustLoad("firewall").Source,
		`22: "ssh"}`, `22: "ssh", 8080: "alt"}`, 1)
	if !strings.Contains(src, "8080") {
		t.Fatal("firewall source changed shape; update the test's config edit")
	}
	return analyzeSource(t, "firewall", src)
}

// firewallExtraRule re-synthesizes the firewall with a structurally new
// egress rule (port 8080 allowed as a special case): the model grows
// entries, so the swap report shows a real entry-table diff.
func firewallExtraRule(t *testing.T) *core.Analysis {
	t.Helper()
	base := nfs.MustLoad("firewall").Source
	old := `        } else {
            blocked_stat = blocked_stat + 1;
        }`
	new_ := `        } else {
            if pkt.dport == 8080 {
                conns[(pkt.sip, pkt.sport, pkt.dip, pkt.dport)] = 1;
                allowed_stat = allowed_stat + 1;
                send(pkt, UNTRUSTED_IFACE);
            } else {
                blocked_stat = blocked_stat + 1;
            }
        }`
	src := strings.Replace(base, old, new_, 1)
	if src == base {
		t.Fatal("firewall source changed shape; update the test's rule edit")
	}
	return analyzeSource(t, "firewall", src)
}

// firewallTrace mixes egress flows over the policy ports (including the
// 8080 port only the modified generations allow), their wan replies,
// and unsolicited wan probes.
func firewallTrace(n int) []netpkt.Packet {
	ports := []int{80, 443, 8080, 53, 22}
	out := make([]netpkt.Packet, 0, n)
	for i := 0; len(out) < n; i++ {
		p := netpkt.Packet{
			SrcIP: fmt.Sprintf("10.0.0.%d", i%20+1), DstIP: fmt.Sprintf("8.8.%d.%d", i%3, i%7+1),
			SrcPort: 1024 + i%500, DstPort: ports[i%len(ports)],
			Proto: "tcp", Flags: "S", TTL: 64, InIface: "lan",
		}
		out = append(out, p)
		if len(out) < n && i%2 == 0 {
			out = append(out, netpkt.Packet{
				SrcIP: p.DstIP, DstIP: p.SrcIP, SrcPort: p.DstPort, DstPort: p.SrcPort,
				Proto: "tcp", Flags: "A", TTL: 60, InIface: "wan",
			})
		}
	}
	return out[:n]
}

// recordSink captures every served outcome in order.
type recordSink struct {
	pkts     []netpkt.Packet
	verdicts []netpkt.Verdict
	entries  []int
	epochs   []uint64
}

func (r *recordSink) Emit(seq int64, p *netpkt.Packet, o *Outcome) error {
	r.pkts = append(r.pkts, *p)
	r.verdicts = append(r.verdicts, o.Verdict)
	r.entries = append(r.entries, o.Entry)
	r.epochs = append(r.epochs, o.Epoch)
	return nil
}

// runServer starts Run on its own goroutine.
func runServer(s *Server) chan error {
	done := make(chan error, 1)
	go func() { done <- s.Run() }()
	return done
}

// checkEpochStream asserts the per-packet consistency invariant on a
// sink-observed epoch stream: non-decreasing, exactly `swaps`
// transitions, every transition on a batch boundary.
func checkEpochStream(t *testing.T, epochs []uint64, batch int, swaps int) {
	t.Helper()
	transitions := 0
	for i := 1; i < len(epochs); i++ {
		if epochs[i] < epochs[i-1] {
			t.Fatalf("packet %d: epoch went backwards (%d after %d)", i, epochs[i], epochs[i-1])
		}
		if epochs[i] != epochs[i-1] {
			transitions++
			if i%batch != 0 {
				t.Errorf("packet %d: generation changed mid-batch (batch size %d)", i, batch)
			}
		}
	}
	if transitions != swaps {
		t.Errorf("epoch transitions = %d, want %d", transitions, swaps)
	}
}

// --- tentpole: swap under load ----------------------------------------

// TestSwapUnderLoadEpochConsistency swaps a serving firewall for a
// re-synthesized generation with a structurally new rule, mid-stream,
// at shard counts 1, 2 and 4, and asserts per-packet generation
// consistency: no packet observes a mixed or stale generation, the
// epoch stream has exactly one transition and it falls on a batch
// barrier, and the behavior change lands exactly at the swap.
func TestSwapUnderLoadEpochConsistency(t *testing.T) {
	base := analyzeNF(t, "firewall")
	next := firewallExtraRule(t)
	trace := firewallTrace(240)

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sink := &recordSink{}
			srv, err := New(Candidate{Analysis: base, Shards: shards}, Config{
				Source:     NewTraceSource(trace, true, 2048),
				Sink:       sink,
				BatchSize:  64,
				WindowSize: 256,
			})
			if err != nil {
				t.Fatal(err)
			}
			done := runServer(srv)
			ch := srv.RequestSwap(SwapRequest{
				Candidate:           Candidate{Analysis: next, Shards: shards, Name: "firewall+8080-rule"},
				AllowBehaviorChange: true,
				AfterPackets:        1024,
			})
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			rep := <-ch
			if rep.Blocked {
				t.Fatalf("swap blocked: %s", rep.Reason)
			}
			if rep.From != 1 || rep.To != 2 {
				t.Errorf("swap generations %d -> %d, want 1 -> 2", rep.From, rep.To)
			}
			if rep.EntriesAdded == 0 {
				t.Errorf("entry-table diff empty for a structurally grown model: %+v", rep)
			}

			stats := srv.Stats()
			if stats.Packets != 2048 || stats.Swaps != 1 || stats.SwapsBlocked != 0 {
				t.Errorf("stats = %s", stats.Report())
			}
			if stats.EpochViolations != 0 {
				t.Fatalf("%d packets observed a mixed or stale generation", stats.EpochViolations)
			}
			if stats.Generation != 2 {
				t.Errorf("serving generation = %d, want 2", stats.Generation)
			}
			checkEpochStream(t, sink.epochs, 64, 1)

			// The behavior change lands exactly at the swap: lan port-8080
			// flows drop on generation 1 and forward on generation 2.
			for i, p := range sink.pkts {
				if p.InIface != "lan" || p.DstPort != 8080 {
					continue
				}
				wantDrop := sink.epochs[i] == 1
				if sink.verdicts[i].Dropped != wantDrop {
					t.Fatalf("packet %d (epoch %d): lan:8080 dropped=%v, want %v",
						i, sink.epochs[i], sink.verdicts[i].Dropped, wantDrop)
				}
			}
		})
	}
}

// TestSwapGateBlocksAndNamesGuard requests a behavior-changing swap
// without AllowBehaviorChange: the differential gate must refuse it,
// name the diverging guard, and leave the old generation serving.
func TestSwapGateBlocksAndNamesGuard(t *testing.T) {
	base := analyzeNF(t, "firewall")
	next := firewallWiderConfig(t)
	trace := firewallTrace(240)

	sink := &recordSink{}
	srv, err := New(Candidate{Analysis: base}, Config{
		Source:     NewTraceSource(trace, true, 512),
		Sink:       sink,
		BatchSize:  64,
		WindowSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := runServer(srv)
	ch := srv.RequestSwap(SwapRequest{
		Candidate:    Candidate{Analysis: next, Name: "firewall+8080-config"},
		AfterPackets: 256,
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rep := <-ch
	if !rep.Blocked {
		t.Fatalf("behavior-changing swap was not blocked: %+v", rep)
	}
	if !strings.Contains(rep.Reason, "diverge") {
		t.Errorf("block reason does not name a divergence: %q", rep.Reason)
	}
	if rep.DivergencePacket < 0 || rep.DivergencePacket >= rep.WindowLen {
		t.Errorf("diverging packet index %d outside the %d-packet window", rep.DivergencePacket, rep.WindowLen)
	}
	if !strings.Contains(rep.GuardDiff, "egress_ports") ||
		!strings.Contains(rep.GuardDiff, "gen1") || !strings.Contains(rep.GuardDiff, "gen2") {
		t.Errorf("diverging guard not named: %q", rep.GuardDiff)
	}
	if !strings.Contains(rep.Render(), "BLOCKED") {
		t.Errorf("rendered report does not say BLOCKED:\n%s", rep.Render())
	}

	stats := srv.Stats()
	if stats.Swaps != 0 || stats.SwapsBlocked != 1 || stats.Generation != 1 {
		t.Errorf("stats after blocked swap = %s", stats.Report())
	}
	if stats.Packets != 512 {
		t.Errorf("server stopped serving after the blocked swap: %d packets", stats.Packets)
	}
	if stats.EpochViolations != 0 {
		t.Errorf("%d epoch violations", stats.EpochViolations)
	}
	checkEpochStream(t, sink.epochs, 64, 0)
}

// --- satellite: state carry-over --------------------------------------

// natTrace builds the carry-over stimulus: 640 packets of `flows` lan
// flows (allocating NAT ports in first-seen order), then after the swap
// point replays of those flows, wan replies to their allocated ports
// and `fresh` brand-new lan flows.
func natLanFlow(i int) netpkt.Packet {
	return netpkt.Packet{
		SrcIP: fmt.Sprintf("10.0.0.%d", i+1), DstIP: "7.7.7.7",
		SrcPort: 1000 + i, DstPort: 80,
		Proto: "tcp", Flags: "S", TTL: 64, InIface: "lan",
	}
}

// TestCarryOverNATSequential swaps a serving NAT for a re-synthesized
// identical NAT and checks the session state survives: established
// translations keep working, wan replies to pre-swap allocations still
// translate back, and new flows continue the port allocator where it
// left off. The whole served stream must match an unswapped engine
// packet for packet.
func TestCarryOverNATSequential(t *testing.T) {
	base := analyzeNF(t, "nat")
	next := analyzeNF(t, "nat") // independent re-synthesis of the same NF

	var trace []netpkt.Packet
	for i := 0; len(trace) < 640; i++ {
		trace = append(trace, natLanFlow(i%10))
	}
	for i := 0; len(trace) < 1280; i++ {
		switch i % 3 {
		case 0: // established flow keeps translating
			trace = append(trace, natLanFlow(i%10))
		case 1: // wan reply to a pre-swap allocation (ports 20000..20009)
			trace = append(trace, netpkt.Packet{
				SrcIP: "7.7.7.7", DstIP: "5.5.5.5",
				SrcPort: 80, DstPort: 20000 + i%10,
				Proto: "tcp", Flags: "A", TTL: 60, InIface: "wan",
			})
		case 2: // new flow: the allocator must continue, not restart
			trace = append(trace, natLanFlow(10+i%10))
		}
	}

	// Reference: the same model serving the same trace with no swap.
	config, state, err := base.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dataplane.Compile(base.Model, config, state)
	if err != nil {
		t.Fatal(err)
	}
	var want []netpkt.Verdict
	for i := range trace {
		o, err := ref.Process(&trace[i])
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, verdictOfOutput(o))
		if trace[i].InIface == "wan" && o.Dropped {
			t.Fatalf("reference dropped wan reply %d — the stimulus is broken", i)
		}
	}

	sink := &recordSink{}
	srv, err := New(Candidate{Analysis: base}, Config{
		Source:     NewTraceSource(trace, false, 0),
		Sink:       sink,
		BatchSize:  64,
		WindowSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := runServer(srv)
	ch := srv.RequestSwap(SwapRequest{
		Candidate:    Candidate{Analysis: next, Name: "nat-resynth"},
		AfterPackets: 640,
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rep := <-ch
	if rep.Blocked {
		t.Fatalf("identical re-synthesis blocked: %s\n%s", rep.Reason, rep.Render())
	}
	carried := map[string]bool{}
	for _, d := range rep.Decisions {
		carried[d.Var] = d.Carried
	}
	for _, v := range []string{"fwd", "rev", "next_port"} {
		if !carried[v] {
			t.Errorf("%s not carried across the swap:\n%s", v, rep.Render())
		}
	}
	if stats := srv.Stats(); stats.EpochViolations != 0 || stats.Swaps != 1 {
		t.Errorf("stats = %s", stats.Report())
	}
	checkEpochStream(t, sink.epochs, 64, 1)

	if len(sink.verdicts) != len(want) {
		t.Fatalf("served %d packets, want %d", len(sink.verdicts), len(want))
	}
	for i := range want {
		if diff := verdictDiff(want[i], sink.verdicts[i]); diff != "" {
			t.Fatalf("packet %d (%s): swapped server diverges from unswapped engine: %s",
				i, &trace[i], diff)
		}
	}
}

func verdictDiff(a, b netpkt.Verdict) string {
	if a.Dropped != b.Dropped {
		return fmt.Sprintf("dropped %v vs %v", a.Dropped, b.Dropped)
	}
	if len(a.Sent) != len(b.Sent) {
		return fmt.Sprintf("sent %d vs %d", len(a.Sent), len(b.Sent))
	}
	for i := range a.Sent {
		if a.Ifaces[i] != b.Ifaces[i] || a.Sent[i].Canonical() != b.Sent[i].Canonical() {
			return fmt.Sprintf("send %d: %s via %s vs %s via %s",
				i, a.Sent[i].Canonical(), a.Ifaces[i], b.Sent[i].Canonical(), b.Ifaces[i])
		}
	}
	return ""
}

// TestCarryOverNATShardedRenamedState carries NAT state into a sharded
// generation. The sharded allocator hands out the same ports in a
// different order (shard s serves init+s, init+s+n, ...), so the carry
// is verified modulo the allocator bijection: every flow must keep the
// port it was assigned before the swap, and the whole stream must stay
// equivalent to a sequential unswapped engine under dataplane.Equiv.
func TestCarryOverNATShardedRenamedState(t *testing.T) {
	base := analyzeNF(t, "nat")
	next := analyzeNF(t, "nat")

	// Lan-only traffic: 20 flows allocate before the swap, the same 20
	// keep flowing after it. (No new post-swap allocations: a sharded
	// allocator's carry is exact only for its merged sequential
	// position, which is the documented contract.)
	var trace []netpkt.Packet
	for i := 0; len(trace) < 1280; i++ {
		trace = append(trace, natLanFlow(i%20))
	}

	config, state, err := base.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dataplane.Compile(base.Model, config, state)
	if err != nil {
		t.Fatal(err)
	}
	var want []dataplane.Output
	for i := range trace {
		o, err := ref.Process(&trace[i])
		if err != nil {
			t.Fatal(err)
		}
		cp := dataplane.Output{Dropped: o.Dropped, Entry: o.Entry}
		cp.Sent = append(cp.Sent, o.Sent...)
		want = append(want, cp)
	}

	sink := &recordSink{}
	srv, err := New(Candidate{Analysis: base, Shards: 2}, Config{
		Source:     NewTraceSource(trace, false, 0),
		Sink:       sink,
		BatchSize:  64,
		WindowSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := runServer(srv)
	ch := srv.RequestSwap(SwapRequest{
		Candidate:    Candidate{Analysis: next, Shards: 2, Name: "nat-resynth-sharded"},
		AfterPackets: 640,
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rep := <-ch
	if rep.Blocked {
		t.Fatalf("sharded re-synthesis swap blocked: %s\n%s", rep.Reason, rep.Render())
	}
	if stats := srv.Stats(); stats.EpochViolations != 0 || stats.Swaps != 1 {
		t.Errorf("stats = %s", stats.Report())
	}
	checkEpochStream(t, sink.epochs, 64, 1)

	// Compare the full served stream — across the swap — against the
	// sequential reference, modulo the allocator-renaming bijection. A
	// reset (or mis-merged) allocator breaks the bijection: a flow's
	// post-swap port would pair its sequential port with a second
	// sharded value.
	cls, err := dataplane.Classify(base.Model, config, state)
	if err != nil {
		t.Fatal(err)
	}
	eq := dataplane.NewEquiv(cls, config)
	for i := range want {
		v := sink.verdicts[i]
		got := dataplane.Output{Dropped: v.Dropped, Entry: sink.entries[i]}
		for j := range v.Sent {
			got.Sent = append(got.Sent, dataplane.SentPacket{Pkt: v.Sent[j], Iface: v.Ifaces[j]})
		}
		if diff := eq.CompareOutputs(dataplane.FlowKey(&trace[i]), &want[i], &got); diff != "" {
			t.Fatalf("packet %d (%s): sharded swapped stream diverges: %s", i, &trace[i], diff)
		}
	}

	// Direct port-stability check, independent of Equiv: each flow's
	// rewritten source port after the swap equals its port before it.
	prePort := map[string]int{}
	for i := range trace {
		if len(sink.verdicts[i].Sent) == 0 {
			continue
		}
		flow := trace[i].SrcIP
		port := sink.verdicts[i].Sent[0].SrcPort
		if i < 640 {
			prePort[flow] = port
		} else if prev, ok := prePort[flow]; ok && prev != port {
			t.Fatalf("packet %d: flow %s changed NAT port across the swap (%d -> %d)",
				i, flow, prev, port)
		}
	}
}

// --- satellite: chain serving -----------------------------------------

// TestChainServeAndSwap serves a fused (and a sharded) dpi->snortlite
// chain and hot-swaps it for an independently re-synthesized chain:
// the swap must apply, carry per-stage state under hop-namespaced
// names, and keep per-packet generation consistency.
func TestChainServeAndSwap(t *testing.T) {
	stages, err := core.AnalyzeChain([]string{"dpi", "snortlite"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stages2, err := core.AnalyzeChain([]string{"dpi", "snortlite"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.New(5).RandomTrace(240)

	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sink := &recordSink{}
			srv, err := New(Candidate{Stages: stages, Shards: shards}, Config{
				Source:     NewTraceSource(trace, true, 768),
				Sink:       sink,
				BatchSize:  64,
				WindowSize: 256,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, name := srv.Generation(); name != "dpi->snortlite" {
				t.Errorf("generation name = %q", name)
			}
			done := runServer(srv)
			ch := srv.RequestSwap(SwapRequest{
				Candidate:    Candidate{Stages: stages2, Shards: shards},
				AfterPackets: 256,
			})
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			rep := <-ch
			if rep.Blocked {
				t.Fatalf("identical chain re-synthesis blocked: %s\n%s", rep.Reason, rep.Render())
			}
			if rep.Carried == 0 {
				t.Errorf("no chain state carried:\n%s", rep.Render())
			}
			hopNamed := false
			for _, d := range rep.Decisions {
				if strings.HasPrefix(d.Var, "dpi#0:") || strings.HasPrefix(d.Var, "snortlite#1:") {
					hopNamed = true
				}
			}
			if !hopNamed {
				t.Errorf("carry decisions not hop-namespaced: %+v", rep.Decisions)
			}
			stats := srv.Stats()
			if stats.Packets != 768 || stats.Swaps != 1 || stats.EpochViolations != 0 {
				t.Errorf("stats = %s", stats.Report())
			}
			// Engine telemetry is generation-local (the swap installs a
			// fresh plane); the continuous counter is ServeStats.Packets.
			if snap := srv.Snapshot(); snap.Packets != 768-256 {
				t.Errorf("generation-2 snapshot packets = %d, want %d", snap.Packets, 768-256)
			}
			checkEpochStream(t, sink.epochs, 64, 1)
		})
	}
}

// --- satellite: sources, sinks, lifecycle -----------------------------

// TestSwapPendingAnsweredOnDrain: a swap whose packet threshold is
// never reached must still get its report when the source drains.
func TestSwapPendingAnsweredOnDrain(t *testing.T) {
	base := analyzeNF(t, "firewall")
	srv, err := New(Candidate{Analysis: base}, Config{
		Source: NewTraceSource(firewallTrace(128), false, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := srv.RequestSwap(SwapRequest{
		Candidate:    Candidate{Analysis: base},
		AfterPackets: 1 << 30,
	})
	if err := srv.Run(); err != nil {
		t.Fatal(err)
	}
	rep := <-ch
	if !rep.Blocked || !strings.Contains(rep.Reason, "stopped before the swap point") {
		t.Errorf("pending swap report = %+v", rep)
	}
}

// TestReaderSource parses a stream with comments, blanks and a
// malformed line; the server serves exactly the valid packets.
func TestReaderSource(t *testing.T) {
	var lines strings.Builder
	lines.WriteString("# a comment\n\n")
	trace := firewallTrace(3)
	lines.WriteString(netpkt.FormatLine(trace[0]) + "\n")
	lines.WriteString("this is not a packet\n")
	lines.WriteString(netpkt.FormatLine(trace[1]) + "\n")
	lines.WriteString(netpkt.FormatLine(trace[2]) + "\n")

	src := NewReaderSource(strings.NewReader(lines.String()))
	srv, err := New(Candidate{Analysis: analyzeNF(t, "firewall")}, Config{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Run(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Packets; got != 3 {
		t.Errorf("served %d packets, want 3", got)
	}
	if src.Malformed() != 1 {
		t.Errorf("malformed = %d, want 1", src.Malformed())
	}
}

// TestUDPSource serves datagrams from a loopback socket; Close drains
// the server cleanly.
func TestUDPSource(t *testing.T) {
	src, err := NewUDPSource("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	srv, err := New(Candidate{Analysis: analyzeNF(t, "firewall")}, Config{
		Source:    src,
		BatchSize: 1, // serve every datagram as its own batch
	})
	if err != nil {
		t.Fatal(err)
	}
	done := runServer(srv)

	conn, err := net.Dial("udp", src.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, p := range firewallTrace(3) {
		if _, err := conn.Write([]byte(netpkt.FormatLine(p))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write([]byte("garbage datagram")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Packets < 3 || src.Malformed() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("served %d packets, %d malformed after 5s", srv.Stats().Packets, src.Malformed())
		}
		time.Sleep(5 * time.Millisecond)
	}
	src.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Packets; got != 3 {
		t.Errorf("served %d packets, want 3", got)
	}
}

// TestWriterSink renders one line per outcome in replay format.
func TestWriterSink(t *testing.T) {
	var out strings.Builder
	sink := NewWriterSink(&out)
	trace := firewallTrace(2)
	v := netpkt.Verdict{Dropped: true}
	if err := sink.Emit(1, &trace[0], &Outcome{Verdict: v, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "DROP") {
		t.Errorf("sink output: %q", out.String())
	}
}
