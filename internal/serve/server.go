package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"nfactor/internal/netpkt"
	"nfactor/internal/obsrv"
	"nfactor/internal/telemetry"
)

// Config tunes a Server.
type Config struct {
	// Source feeds packets; nil is invalid. Sink receives outcomes;
	// nil means Discard.
	Source Source
	Sink   Sink
	// BatchSize is the quiescence granularity: swaps apply only at
	// batch barriers, so a smaller batch bounds swap latency while a
	// larger one amortizes the per-barrier bookkeeping. Default 64.
	BatchSize int
	// WindowSize bounds the ring of recently served packets that gates
	// swaps. Default 1024.
	WindowSize int
	// OnSwap, when set, observes every swap decision (applied or
	// blocked) from the serving goroutine, before the requester's
	// channel is answered.
	OnSwap func(*SwapReport)
	// Obs, when set, enables the observability collectors (gap-hit
	// detection against NFL103 witnesses, verdict-mix/top-K drift, the
	// swap audit trail) — the state behind the obsrv HTTP endpoints.
	// The collectors rebuild at every generation install.
	Obs *obsrv.Options
}

// Server is the live serving loop: one goroutine (Run) pulls packets
// from the Source in batches, pushes every verdict to the Sink, and
// applies queued generation swaps at batch barriers — the quiescence
// point where no packet is in flight, so every packet observes exactly
// one generation (asserted per packet via the epoch stamp).
//
// RequestSwap, Stats and Snapshot may be called from other goroutines;
// everything else belongs to the serving goroutine.
type Server struct {
	cfg Config
	gen *Generation

	window []netpkt.Packet // ring of the last WindowSize served packets
	total  int64           // packets pushed into the ring

	swapCh    chan *swapTicket
	stopCh    chan struct{}
	inspectCh chan *inspectTicket
	running   atomic.Bool // serving loop active (InspectState routing)

	stats telemetry.ServeStats // serving-goroutine copy
	pub   atomic.Pointer[Published]

	// Observability collectors (nil when Config.Obs is unset). obs
	// belongs to the serving goroutine; swapLog is internally locked.
	obs     *obsrv.Collector
	swapLog *obsrv.SwapLog
	// Published obs/stage snapshots refresh at most every obsRefresh
	// of wall time, not every batch.
	pubObs    *obsrv.Snapshot
	pubStages []telemetry.Snapshot
	pubObsAt  time.Time

	lastEpoch uint64
}

// obsRefresh is how stale a published collector snapshot may get:
// scrapes want freshness on the order of seconds, the serve loop turns
// over batches in microseconds, and building the snapshot (sample
// rendering, sketch copies, per-stage telemetry) costs microseconds —
// amortizing it by wall time keeps the cost independent of packet rate.
const obsRefresh = 200 * time.Millisecond

// Published is the cross-goroutine observable state, republished after
// every batch: the serving stats plus the engine's own telemetry.
// Stages and Obs carry the per-stage telemetry and the collector
// snapshot when observability is enabled (refreshed every few batches).
type Published struct {
	Stats  telemetry.ServeStats
	Engine telemetry.Snapshot
	Stages []telemetry.Snapshot
	Obs    *obsrv.Snapshot
	// Name labels the serving generation (the candidate's display
	// name); republished with the stats so readers never touch the
	// live generation struct.
	Name string
}

type swapTicket struct {
	req SwapRequest
	ch  chan *SwapReport
}

// New builds the initial generation (number 1, pristine state) and a
// server around it.
func New(c Candidate, cfg Config) (*Server, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("serve: nil source")
	}
	if cfg.Sink == nil {
		cfg.Sink = Discard
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 1024
	}
	stages, err := normalize(c)
	if err != nil {
		return nil, err
	}
	gen, err := buildGeneration(c, 1, stages, nil)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		gen:       gen,
		window:    make([]netpkt.Packet, 0, cfg.WindowSize),
		swapCh:    make(chan *swapTicket, 16),
		stopCh:    make(chan struct{}),
		inspectCh: make(chan *inspectTicket, 16),
		lastEpoch: gen.Num,
	}
	if cfg.Obs != nil {
		s.swapLog = obsrv.NewSwapLog(cfg.Obs.SwapLog)
		s.installCollector()
	}
	s.stats.Generation = gen.Num
	s.publish()
	return s, nil
}

// Generation returns the serving generation's number and name, as of
// the last published batch (reading the live generation struct would
// race the swap install on the serving goroutine).
func (s *Server) Generation() (uint64, string) {
	p := s.pub.Load()
	return p.Stats.Generation, p.Name
}

// RequestSwap queues a swap for the next eligible batch barrier and
// returns a channel that receives the report (buffered: the requester
// may drop it). Requests are served FIFO; each gates against whatever
// generation is serving when it reaches its barrier. If the server
// stops (or the source drains) before the request becomes eligible, the
// report comes back Blocked with that reason.
func (s *Server) RequestSwap(req SwapRequest) <-chan *SwapReport {
	t := &swapTicket{req: req, ch: make(chan *SwapReport, 1)}
	select {
	case s.swapCh <- t:
	default:
		t.ch <- &SwapReport{Name: req.Candidate.name(), Blocked: true,
			Reason: "swap queue full", DivergencePacket: -1}
	}
	return t.ch
}

// Stop makes Run return at the next batch barrier. Sources that block
// indefinitely (UDP) should also be closed to unblock the fill.
func (s *Server) Stop() {
	select {
	case <-s.stopCh:
	default:
		close(s.stopCh)
	}
}

// Stats returns the most recently published serving stats.
func (s *Server) Stats() telemetry.ServeStats { return s.pub.Load().Stats }

// Snapshot returns the serving engine's most recently published
// telemetry snapshot.
func (s *Server) Snapshot() telemetry.Snapshot { return s.pub.Load().Engine }

// Run serves until the source is exhausted or Stop is called. It
// returns a non-nil error only when the data plane itself fails (an
// evaluation error — a synthesis bug, not an operational condition) or
// the sink rejects a write.
func (s *Server) Run() error {
	var pending []*swapTicket
	s.running.Store(true)
	defer func() {
		for _, t := range pending {
			t.ch <- &SwapReport{From: s.gen.Num, To: s.gen.Num, Name: t.req.Candidate.name(),
				Blocked: true, Reason: "server stopped before the swap point", DivergencePacket: -1}
		}
		// Answer inspection tickets that raced the shutdown, then let
		// future ones take the direct (quiesced) path.
		s.serviceInspect()
		// Force a final collector publish: the amortized refresh may lag
		// by up to obsRefresh, and a drained server must report exact
		// gap-hit and drift totals.
		if s.obs != nil {
			s.pubObs = nil
			s.publish()
		}
		s.running.Store(false)
	}()

	batch := make([]netpkt.Packet, 0, s.cfg.BatchSize)
	outs := make([]Outcome, s.cfg.BatchSize)
	for {
		// Barrier: no packet is in flight here. Apply every eligible
		// queued swap, FIFO, and answer state-inspection tickets on the
		// quiesced plane.
		pending = s.drainSwaps(pending)
		pending = s.applyEligible(pending)
		s.serviceInspect()

		select {
		case <-s.stopCh:
			return nil
		default:
		}

		batch = batch[:0]
		exhausted := false
		for len(batch) < s.cfg.BatchSize {
			var p netpkt.Packet
			ok, err := s.cfg.Source.Next(&p)
			if !ok {
				exhausted = true
				break
			}
			if err != nil {
				continue // malformed input, counted by the source
			}
			batch = append(batch, p)
		}
		if len(batch) > 0 {
			if err := s.serveBatch(batch, outs[:len(batch)]); err != nil {
				return err
			}
		}
		if exhausted {
			pending = s.drainSwaps(pending)
			pending = s.applyEligible(pending)
			return nil
		}
	}
}

// serveBatch runs one batch through the serving plane, asserts the
// per-packet consistency invariant on every output's epoch stamp,
// records the packets in the gating window and emits the outcomes.
func (s *Server) serveBatch(batch []netpkt.Packet, outs []Outcome) error {
	if err := s.gen.plane.processBatch(batch, outs); err != nil {
		return fmt.Errorf("serve: generation %d: %w", s.gen.Num, err)
	}
	for i := range batch {
		o := &outs[i]
		// Per-packet consistency: a batch straddles no swap, so every
		// stamp must be the serving generation's, and stamps never move
		// backwards across batches.
		if o.Epoch != s.gen.Num || o.Epoch < s.lastEpoch {
			s.stats.EpochViolations++
		}
		s.lastEpoch = o.Epoch
		s.pushWindow(&batch[i])
		s.stats.Packets++
		if s.obs != nil {
			s.obs.Observe(&batch[i], o.Verdict.Dropped, o.DefaultStage)
		}
		if err := s.cfg.Sink.Emit(s.stats.Packets, &batch[i], o); err != nil {
			return fmt.Errorf("serve: sink: %w", err)
		}
	}
	s.publish()
	return nil
}

// drainSwaps moves queued tickets into the pending list without
// blocking.
func (s *Server) drainSwaps(pending []*swapTicket) []*swapTicket {
	for {
		select {
		case t := <-s.swapCh:
			pending = append(pending, t)
		default:
			return pending
		}
	}
}

// applyEligible runs every pending swap whose packet threshold has been
// reached. Runs at the barrier, on the serving goroutine.
func (s *Server) applyEligible(pending []*swapTicket) []*swapTicket {
	rest := pending[:0]
	for _, t := range pending {
		if t.req.AfterPackets > s.stats.Packets {
			rest = append(rest, t)
			continue
		}
		gen, rep := swap(s.gen, t.req, s.windowCopy())
		if gen != nil {
			s.gen = gen
			s.stats.Generation = gen.Num
			s.stats.Swaps++
			s.stats.CarriedVars += int64(rep.Carried)
			s.stats.ResetVars += int64(rep.Reset)
			s.stats.LastSwapPauseNs = rep.Pause.Nanoseconds()
			// New model, new observers: gap matchers and the drift
			// baseline are generation properties.
			s.installCollector()
		} else {
			s.stats.SwapsBlocked++
		}
		if s.swapLog != nil {
			s.swapLog.Record(swapEventOf(rep, s.stats.Packets))
		}
		s.publish()
		if s.cfg.OnSwap != nil {
			s.cfg.OnSwap(rep)
		}
		t.ch <- rep
	}
	return rest
}

// pushWindow records one served packet in the gating ring.
func (s *Server) pushWindow(p *netpkt.Packet) {
	if len(s.window) < cap(s.window) {
		s.window = append(s.window, *p)
	} else {
		s.window[s.total%int64(cap(s.window))] = *p
	}
	s.total++
}

// windowCopy snapshots the ring in serving order (oldest first).
func (s *Server) windowCopy() []netpkt.Packet {
	n := int64(len(s.window))
	out := make([]netpkt.Packet, 0, n)
	if n < int64(cap(s.window)) {
		return append(out, s.window...)
	}
	at := s.total % n
	out = append(out, s.window[at:]...)
	return append(out, s.window[:at]...)
}

// publish republishes the observable state. The serve stats and merged
// engine snapshot refresh every batch; the collector snapshot and
// per-stage telemetry refresh at most every obsRefresh of wall time
// (snapshotting the collectors copies sample rings and sketch tops —
// microseconds of work, too much for every 64 packets). A nil pubObs
// (fresh install, forced final publish) refreshes immediately.
func (s *Server) publish() {
	st := s.stats
	st.WindowLen = int64(len(s.window))
	p := &Published{Stats: st, Engine: s.gen.plane.snapshot(), Name: s.gen.Name}
	if s.obs != nil {
		if now := time.Now(); s.pubObs == nil || now.Sub(s.pubObsAt) >= obsRefresh {
			s.pubObs = s.obs.Snapshot(s.gen.Num, s.gen.Name)
			s.pubStages = s.gen.plane.stageSnapshots()
			s.pubObsAt = now
		}
		p.Obs, p.Stages = s.pubObs, s.pubStages
	}
	s.pub.Store(p)
}
