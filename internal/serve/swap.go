package serve

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nfactor/internal/chain"
	"nfactor/internal/dataplane"
	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/telemetry"
	"nfactor/internal/value"
)

// SwapRequest asks the server to replace the running generation with a
// freshly built candidate at the next batch barrier.
type SwapRequest struct {
	Candidate Candidate
	// AllowBehaviorChange skips the old-vs-new behavior gate — the
	// normal case for an intentional model update (a re-synthesized NF
	// with a changed config or source). The candidate-faithfulness gate
	// (candidate engine vs its own reference semantics over the live
	// window) always runs.
	AllowBehaviorChange bool
	// AfterPackets defers the swap until at least this many packets
	// have been served (0: the next barrier). Lets tests and smoke runs
	// place the swap mid-stream deterministically.
	AfterPackets int64
}

// SwapReport is the outcome of one swap request: applied (with the
// carry-over audit) or blocked (with the first divergence, down to the
// diverging guard when the trails disagree).
type SwapReport struct {
	// From and To are the generation numbers. A blocked swap has To ==
	// From: the old generation keeps serving.
	From, To uint64
	// Name labels the candidate.
	Name string
	// Blocked reports a refused swap; Reason says why, naming the
	// first divergence.
	Blocked bool
	Reason  string
	// GuardDiff pinpoints the first guard whose outcome differs
	// between the two generations' explain trails at the diverging
	// packet (behavior gate) or between the candidate and its
	// reference (faithfulness gate). Empty when the divergence is not
	// guard-attributable.
	GuardDiff string
	// DivergencePacket is the window index of the diverging packet
	// (-1: none / not packet-attributable).
	DivergencePacket int
	// WindowLen is how many recently served packets gated this swap.
	WindowLen int
	// EntriesAdded / EntriesRemoved summarize the entry-table diff
	// between the generations (by entry fingerprint, summed across
	// stages).
	EntriesAdded, EntriesRemoved int
	// Decisions is the per-variable carry-over audit (stage-prefixed
	// "name#i:var" for chains); Carried and Reset count them.
	Decisions []dataplane.CarryDecision
	Carried   int
	Reset     int
	// Pause is how long the data plane was quiesced at the barrier
	// (gating, carry, build, verify).
	Pause time.Duration
}

// Render formats the report for humans (one paragraph, stderr-bound).
func (r *SwapReport) Render() string {
	var b strings.Builder
	if r.Blocked {
		fmt.Fprintf(&b, "swap to %q BLOCKED (generation %d keeps serving): %s\n", r.Name, r.From, r.Reason)
		if r.GuardDiff != "" {
			fmt.Fprintf(&b, "  diverging guard: %s\n", r.GuardDiff)
		}
		fmt.Fprintf(&b, "  gated over %d live packets\n", r.WindowLen)
		return b.String()
	}
	fmt.Fprintf(&b, "swapped generation %d -> %d (%q) in %s\n", r.From, r.To, r.Name, r.Pause)
	fmt.Fprintf(&b, "  entry table: +%d -%d; gated over %d live packets\n", r.EntriesAdded, r.EntriesRemoved, r.WindowLen)
	fmt.Fprintf(&b, "  state carry-over: %d carried, %d reset\n", r.Carried, r.Reset)
	for _, d := range r.Decisions {
		verb := "reset"
		if d.Carried {
			verb = "carried"
		}
		fmt.Fprintf(&b, "    %-7s %s: %s\n", verb, d.Var, d.Reason)
	}
	return b.String()
}

// specOf rebuilds the chain.NamedModel spec from normalized stages,
// with each stage's pristine init state.
func specOf(stages []genStage) []chain.NamedModel {
	spec := make([]chain.NamedModel, len(stages))
	for i := range stages {
		st := &stages[i]
		spec[i] = chain.NamedModel{Name: st.name, Model: st.m, Config: st.config, State: st.init}
	}
	return spec
}

// swap runs the full swap protocol against the currently installed
// generation `old`, over `window` (the most recently served packets in
// serving order): gate the candidate, compute carry-over from the live
// state, build the new plane from the carried state, verify the carry
// landed, and return the new generation with its report. A blocked
// swap returns gen == nil and report.Blocked.
func swap(old *Generation, req SwapRequest, window []netpkt.Packet) (*Generation, *SwapReport) {
	start := time.Now()
	rep := &SwapReport{From: old.Num, To: old.Num, Name: req.Candidate.name(),
		WindowLen: len(window), DivergencePacket: -1}
	block := func(reason, guardDiff string, pkt int) (*Generation, *SwapReport) {
		rep.Blocked, rep.Reason, rep.GuardDiff, rep.DivergencePacket = true, reason, guardDiff, pkt
		rep.Pause = time.Since(start)
		return nil, rep
	}

	next, err := normalize(req.Candidate)
	if err != nil {
		return block(err.Error(), "", -1)
	}

	// Gate 1 — candidate faithfulness: the candidate's compiled engine
	// must match its own reference semantics over the live window. A
	// candidate that fails this is mis-synthesized or mis-lowered; it
	// never reaches the wire.
	if len(window) > 0 {
		if req.Candidate.Analysis != nil {
			res, err := req.Candidate.Analysis.DiffTestCompiled(window, req.Candidate.Opts)
			if err != nil {
				return block(fmt.Sprintf("faithfulness gate failed to run: %v", err), "", -1)
			}
			if res.Mismatches > 0 {
				gd, pkt := "", -1
				if res.First != nil {
					gd, pkt = res.First.GuardDiff, res.First.Packet
				}
				return block("candidate diverges from its own reference semantics: "+res.FirstDiff, gd, pkt)
			}
		} else {
			res, err := dataplane.DiffTestChain(specOf(next), window)
			if err != nil {
				return block(fmt.Sprintf("faithfulness gate failed to run: %v", err), "", -1)
			}
			if res.Mismatches > 0 {
				return block("candidate chain diverges from its stage-by-stage reference: "+res.FirstDiff, "", -1)
			}
		}
	}

	// Gate 2 — behavior equivalence: old and new generations, replayed
	// from pristine state over the live window, must produce the same
	// observable behavior (verdict, emitted packets, interfaces — entry
	// indices renumber across generations and are not compared). Skipped
	// only on an explicit AllowBehaviorChange.
	if !req.AllowBehaviorChange && len(window) > 0 {
		if reason, gd, pkt := behaviorGate(old, next, window); reason != "" {
			return block(reason, gd, pkt)
		}
	}

	rep.EntriesAdded, rep.EntriesRemoved = entryTableDiff(old.stages, next)

	// Carry-over: per-variable against the live state, quiesced at the
	// barrier.
	var carry []map[string]value.Value
	if len(next) == len(old.stages) {
		live := old.plane.stageStates()
		carry = make([]map[string]value.Value, len(next))
		for i := range next {
			if next[i].name != old.stages[i].name {
				for _, n := range sortedVarNames(next[i].init) {
					rep.Decisions = append(rep.Decisions, dataplane.CarryDecision{
						Var: stageVar(next, i, n), Reason: fmt.Sprintf("stage NF changed (%s -> %s)", old.stages[i].name, next[i].name)})
				}
				continue // carry[i] stays nil: pristine init
			}
			st, decs := dataplane.CarryOver(old.stages[i].cls, next[i].cls, live[i], next[i].init)
			carry[i] = st
			for _, d := range decs {
				d.Var = stageVar(next, i, d.Var)
				rep.Decisions = append(rep.Decisions, d)
			}
		}
	} else {
		for i := range next {
			for _, n := range sortedVarNames(next[i].init) {
				rep.Decisions = append(rep.Decisions, dataplane.CarryDecision{
					Var: stageVar(next, i, n), Reason: fmt.Sprintf("chain shape changed (%d -> %d stages)", len(old.stages), len(next))})
			}
		}
	}
	for _, d := range rep.Decisions {
		if d.Carried {
			rep.Carried++
		} else {
			rep.Reset++
		}
	}

	gen, err := buildGeneration(req.Candidate, old.Num+1, next, carry)
	if err != nil {
		return block(fmt.Sprintf("candidate failed to build: %v", err), "", -1)
	}

	// Verify the carried state actually landed in the new plane (the
	// sharded builders re-lower it; the merge must invert the lowering).
	if carry != nil {
		got := gen.plane.stageStates()
		for i := range next {
			if carry[i] == nil {
				continue
			}
			for name, want := range carry[i] {
				if have, ok := got[i][name]; !ok || !value.Equal(want, have) {
					return block(fmt.Sprintf("carry verification failed: %s did not survive the rebuild (want %s, plane has %s)",
						stageVar(next, i, name), want, got[i][name]), "", -1)
				}
			}
		}
	}

	rep.To = gen.Num
	rep.Pause = time.Since(start)
	return gen, rep
}

// behaviorGate replays fresh pristine replicas of both generations over
// the window in lockstep. On the first observable difference it
// rebuilds both replicas, replays the prefix, explains the diverging
// packet on each side and names the first guard whose outcome differs.
// Returns "" when the window agrees.
func behaviorGate(old *Generation, next []genStage, window []netpkt.Packet) (reason, guardDiff string, pkt int) {
	oldRep, err := newReplica(old.stages)
	if err != nil {
		return fmt.Sprintf("behavior gate: old replica: %v", err), "", -1
	}
	newRep, err := newReplica(next)
	if err != nil {
		return fmt.Sprintf("behavior gate: candidate replica: %v", err), "", -1
	}
	for i := range window {
		ov, oerr := oldRep.process(&window[i])
		nv, nerr := newRep.process(&window[i])
		if (oerr != nil) != (nerr != nil) {
			return fmt.Sprintf("packet %d (%s): error mismatch: old=%v new=%v", i, &window[i], oerr, nerr), "", i
		}
		if oerr != nil {
			continue // both errored identically observable
		}
		if diff := compareVerdicts(ov, nv); diff != "" {
			gd := explainDivergence(old, next, window, i)
			return fmt.Sprintf("packet %d (%s): generations diverge: %s", i, &window[i], diff), gd, i
		}
	}
	return "", "", -1
}

// explainDivergence replays fresh replicas of both generations over
// window[:i] and diffs the guard trails of window[i], labeling each
// side with its generation number. Best-effort: "" when a replica
// cannot be rebuilt.
func explainDivergence(old *Generation, next []genStage, window []netpkt.Packet, i int) string {
	trailOf := func(stages []genStage, label string) *telemetry.PacketTrace {
		rep, err := newReplica(stages)
		if err != nil {
			return nil
		}
		for j := 0; j < i; j++ {
			if _, err := rep.process(&window[j]); err != nil {
				return nil
			}
		}
		tr, _ := rep.explain(&window[i])
		if tr != nil {
			tr.Backend = label
		}
		return tr
	}
	a := trailOf(old.stages, fmt.Sprintf("gen%d", old.Num))
	b := trailOf(next, fmt.Sprintf("gen%d", old.Num+1))
	if a == nil || b == nil {
		return ""
	}
	return telemetry.DiffGuards(a, b)
}

// compareVerdicts checks observable behavior only: drop/forward, the
// emitted packets and their interfaces. Entry indices are generation-
// local and excluded.
func compareVerdicts(a, b netpkt.Verdict) string {
	if a.Dropped != b.Dropped {
		return fmt.Sprintf("verdict mismatch: old=%v new=%v", a, b)
	}
	if len(a.Sent) != len(b.Sent) {
		return fmt.Sprintf("send count mismatch: old=%d new=%d", len(a.Sent), len(b.Sent))
	}
	for i := range a.Sent {
		if a.Ifaces[i] != b.Ifaces[i] {
			return fmt.Sprintf("send %d iface mismatch: old=%q new=%q", i, a.Ifaces[i], b.Ifaces[i])
		}
		if a.Sent[i].Canonical() != b.Sent[i].Canonical() {
			return fmt.Sprintf("send %d packet mismatch:\n  old: %s\n  new: %s", i, a.Sent[i].Canonical(), b.Sent[i].Canonical())
		}
	}
	return ""
}

// replica is a fresh sequential twin of a generation, replayed from
// pristine state during gating.
type replica interface {
	process(p *netpkt.Packet) (netpkt.Verdict, error)
	explain(p *netpkt.Packet) (*telemetry.PacketTrace, error)
}

// newReplica compiles a sequential replica from pristine state: an
// Engine for a single NF, a fused ChainEngine for a chain (faithful to
// the stage-by-stage reference by gate 1's own check).
func newReplica(stages []genStage) (replica, error) {
	if len(stages) == 1 {
		eng, err := dataplane.Compile(stages[0].m, stages[0].config, stages[0].init)
		if err != nil {
			return nil, err
		}
		return &engineReplica{eng: eng}, nil
	}
	eng, err := dataplane.CompileChain(specOf(stages))
	if err != nil {
		return nil, err
	}
	return &chainReplica{eng: eng}, nil
}

type engineReplica struct{ eng *dataplane.Engine }

func (r *engineReplica) process(p *netpkt.Packet) (netpkt.Verdict, error) {
	o, err := r.eng.Process(p)
	if err != nil {
		return netpkt.Verdict{}, err
	}
	return verdictOfOutput(o), nil
}

func (r *engineReplica) explain(p *netpkt.Packet) (*telemetry.PacketTrace, error) {
	_, tr, err := r.eng.ProcessExplain(p)
	return tr, err
}

type chainReplica struct{ eng *dataplane.ChainEngine }

func (r *chainReplica) process(p *netpkt.Packet) (netpkt.Verdict, error) {
	o, err := r.eng.Process(p)
	if err != nil {
		return netpkt.Verdict{}, err
	}
	return verdictOfChainOutput(o), nil
}

func (r *chainReplica) explain(p *netpkt.Packet) (*telemetry.PacketTrace, error) {
	_, tr, err := r.eng.ProcessExplain(p)
	return tr, err
}

// entryTableDiff counts, per stage index, the entries present in one
// generation's table and not the other (by structural fingerprint),
// summed across stages. Stages beyond the shorter chain count whole.
func entryTableDiff(old, next []genStage) (added, removed int) {
	n := len(old)
	if len(next) > n {
		n = len(next)
	}
	for i := 0; i < n; i++ {
		var of, nf map[string]int
		if i < len(old) {
			of = entryFingerprints(old[i].m)
		}
		if i < len(next) {
			nf = entryFingerprints(next[i].m)
		}
		for fp, c := range nf {
			if d := c - of[fp]; d > 0 {
				added += d
			}
		}
		for fp, c := range of {
			if d := c - nf[fp]; d > 0 {
				removed += d
			}
		}
	}
	return added, removed
}

func entryFingerprints(m *model.Model) map[string]int {
	out := make(map[string]int, len(m.Entries))
	for i := range m.Entries {
		e := &m.Entries[i]
		out[fmt.Sprintf("%v|%v|%v|%v|%v", e.Config, e.FlowMatch, e.StateMatch, e.Sends, e.Updates)]++
	}
	return out
}

// stageVar namespaces a variable name for reports: bare for a single
// NF, "name#i:var" for chains (the hop-namespace convention).
func stageVar(stages []genStage, i int, name string) string {
	if len(stages) == 1 {
		return name
	}
	return fmt.Sprintf("%s#%d:%s", stages[i].name, i, name)
}

func sortedVarNames(m map[string]value.Value) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
