// Package slice implements backward static program slicing over the PDG —
// the giri-equivalent component of NFactor (Algorithm 1's BackwardSlice).
//
// A slice is computed as PDG reachability from criterion statements and
// reconstructed into a runnable reduced program, preserving the control
// structure (branch conditions enter the slice via control dependence,
// early returns via jump handling).
package slice

import (
	"fmt"
	"sort"

	"nfactor/internal/cfg"
	"nfactor/internal/lang"
	"nfactor/internal/pdg"
)

// Analyzer holds the analysis state for one (inlined) program + entry
// function, so that many slices can be taken cheaply.
type Analyzer struct {
	Prog  *lang.Program // inlined program the analyses ran on
	Entry string
	G     *cfg.Graph
	P     *pdg.Graph
}

// NewAnalyzer inlines prog's entry function and builds its CFG and PDG.
func NewAnalyzer(prog *lang.Program, entry string) (*Analyzer, error) {
	inlined, err := lang.Inline(prog, entry)
	if err != nil {
		return nil, err
	}
	g, err := cfg.Build(inlined, entry)
	if err != nil {
		return nil, err
	}
	p := pdg.Build(g, inlined.Func(entry).Params)
	return &Analyzer{Prog: inlined, Entry: entry, G: g, P: p}, nil
}

// Backward computes the backward slice from the given criterion AST
// statement IDs. The result is a set of AST statement IDs.
func (a *Analyzer) Backward(criteria []int) (map[int]bool, error) {
	inSlice := map[int]bool{} // CFG node IDs
	var work []int
	for _, stmtID := range criteria {
		n := a.G.NodeByStmt(stmtID)
		if n == nil {
			return nil, fmt.Errorf("slice: criterion statement %d has no CFG node", stmtID)
		}
		if !inSlice[n.ID] {
			inSlice[n.ID] = true
			work = append(work, n.ID)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, d := range a.P.Deps(n) {
			if !inSlice[d] {
				inSlice[d] = true
				work = append(work, d)
			}
		}
	}

	// Jump handling: a return/break/continue whose guarding branches are
	// all in the slice shapes the reachability of sliced statements and
	// must be kept (otherwise the reduced program falls through paths the
	// original exits early from).
	for _, n := range a.G.Nodes {
		if n.Stmt == nil || inSlice[n.ID] {
			continue
		}
		switch n.Stmt.(type) {
		case *lang.ReturnStmt, *lang.BreakStmt, *lang.ContinueStmt:
			ok := true
			for _, d := range a.P.CtrlDeps[n.ID] {
				if !inSlice[d] {
					ok = false
					break
				}
			}
			if ok {
				inSlice[n.ID] = true
			}
		}
	}

	out := map[int]bool{}
	for id := range inSlice {
		n := a.G.Node(id)
		if n.Stmt != nil {
			out[n.Stmt.StmtID()] = true
		}
	}
	return out, nil
}

// Union merges slice statement-ID sets.
func Union(sets ...map[int]bool) map[int]bool {
	out := map[int]bool{}
	for _, s := range sets {
		for k := range s {
			out[k] = true
		}
	}
	return out
}

// SortedIDs returns the statement IDs of a slice in ascending order.
func SortedIDs(s map[int]bool) []int {
	out := make([]int, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Reconstruct builds a runnable reduced program containing exactly the
// sliced statements of the analyzer's program (globals and entry-function
// body filtered to the slice, control structure preserved). The returned
// program is freshly indexed; RemappedIDs maps original statement IDs to
// whether they were kept.
func (a *Analyzer) Reconstruct(stmtIDs map[int]bool) *lang.Program {
	src := a.Prog
	out := &lang.Program{}
	for _, g := range src.Globals {
		if stmtIDs[g.StmtID()] {
			out.Globals = append(out.Globals, lang.CloneProgram(&lang.Program{Globals: []*lang.AssignStmt{g}}).Globals[0])
		}
	}
	fn := src.Func(a.Entry)
	body := filterBlock(fn.Body, stmtIDs)
	out.Funcs = []*lang.FuncDecl{{
		Name:   fn.Name,
		Params: append([]string(nil), fn.Params...),
		Body:   body,
		Pos:    fn.Pos,
	}}
	out.IndexProgram()
	return out
}

func filterBlock(b *lang.BlockStmt, keep map[int]bool) *lang.BlockStmt {
	out := &lang.BlockStmt{}
	for _, s := range b.Stmts {
		if ns := filterStmt(s, keep); ns != nil {
			out.Stmts = append(out.Stmts, ns)
		}
	}
	return out
}

func filterStmt(s lang.Stmt, keep map[int]bool) lang.Stmt {
	if !keep[s.StmtID()] {
		return nil
	}
	switch st := s.(type) {
	case *lang.IfStmt:
		ns := &lang.IfStmt{Cond: st.Cond, Then: filterBlock(st.Then, keep)}
		if st.Else != nil {
			els := filterBlock(st.Else, keep)
			if len(els.Stmts) > 0 {
				ns.Else = els
			}
		}
		ns.SetNodePos(st.NodePos())
		return cloneVia(ns)
	case *lang.WhileStmt:
		ns := &lang.WhileStmt{Cond: st.Cond, Body: filterBlock(st.Body, keep)}
		ns.SetNodePos(st.NodePos())
		return cloneVia(ns)
	case *lang.ForStmt:
		ns := &lang.ForStmt{Var: st.Var, Iter: st.Iter, Body: filterBlock(st.Body, keep)}
		ns.SetNodePos(st.NodePos())
		return cloneVia(ns)
	default:
		return cloneVia(s)
	}
}

// cloneVia deep-copies a statement through a throwaway program so the
// reduced tree shares no nodes with the analyzed tree.
func cloneVia(s lang.Stmt) lang.Stmt {
	blk := &lang.BlockStmt{Stmts: []lang.Stmt{s}}
	p := &lang.Program{Funcs: []*lang.FuncDecl{{Name: "w", Body: blk}}}
	return lang.CloneProgram(p).Funcs[0].Body.Stmts[0]
}

// SliceLoC counts lines of code of the reconstructed slice program, the
// "slice" LoC column of Table 2.
func (a *Analyzer) SliceLoC(stmtIDs map[int]bool) int {
	return lang.CountLoC(a.Reconstruct(stmtIDs))
}
