package slice

import (
	"strings"
	"testing"

	"nfactor/internal/lang"
)

// lbSrc is the paper's Figure 1 load balancer, transcribed to NFLang.
const lbSrc = `
mode = "RR";
LB_IP = "3.3.3.3";
LB_PORT = 80;
servers = [("1.1.1.1", 80), ("2.2.2.2", 80)];
f2b_nat = {};
b2f_nat = {};
rr_idx = 0;
cur_port = 10000;
pass_stat = 0;
drop_stat = 0;

func process(pkt) {
    si, di = pkt.sip, pkt.dip;
    sp, dp = pkt.sport, pkt.dport;
    if dp == LB_PORT {
        cs_ftpl = (si, sp, di, dp);
        sc_ftpl = (di, dp, si, sp);
        if !(cs_ftpl in f2b_nat) {
            if mode == "RR" {
                server = servers[rr_idx];
                rr_idx = (rr_idx + 1) % len(servers);
            } else {
                server = servers[hash(si) % len(servers)];
            }
            n_port = cur_port;
            cur_port = cur_port + 1;
            cs_btpl = (LB_IP, n_port, server[0], server[1]);
            sc_btpl = (server[0], server[1], LB_IP, n_port);
            f2b_nat[cs_ftpl] = cs_btpl;
            b2f_nat[sc_btpl] = sc_ftpl;
            nat_tpl = cs_btpl;
        } else {
            nat_tpl = f2b_nat[cs_ftpl];
        }
    } else {
        sc_btpl = (si, sp, di, dp);
        if sc_btpl in b2f_nat {
            nat_tpl = b2f_nat[sc_btpl];
        } else {
            drop_stat = drop_stat + 1;
            return;
        }
    }
    pass_stat = pass_stat + 1;
    pkt.sip = nat_tpl[0];
    pkt.sport = nat_tpl[1];
    pkt.dip = nat_tpl[2];
    pkt.dport = nat_tpl[3];
    send(pkt);
}
`

func analyzer(t *testing.T, src string) *Analyzer {
	t.Helper()
	a, err := NewAnalyzer(lang.MustParse(src), "process")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// sendCriteria finds all send() statements in the analyzed program.
func sendCriteria(a *Analyzer) []int {
	var ids []int
	a.Prog.WalkStmts(func(s lang.Stmt) {
		if es, ok := s.(*lang.ExprStmt); ok {
			if c, ok := es.X.(*lang.CallExpr); ok && c.Fun == "send" {
				ids = append(ids, s.StmtID())
			}
		}
	})
	return ids
}

func TestPacketSliceExcludesLogVars(t *testing.T) {
	a := analyzer(t, lbSrc)
	sl, err := a.Backward(sendCriteria(a))
	if err != nil {
		t.Fatal(err)
	}
	red := a.Reconstruct(sl)
	printed := lang.Print(red)
	if strings.Contains(printed, "pass_stat") || strings.Contains(printed, "drop_stat") {
		t.Errorf("log statistics leaked into the packet slice:\n%s", printed)
	}
	for _, want := range []string{"f2b_nat", "rr_idx", "send(pkt)", "mode", "servers"} {
		if !strings.Contains(printed, want) {
			t.Errorf("packet slice missing %q:\n%s", want, printed)
		}
	}
}

func TestPacketSliceIsSmaller(t *testing.T) {
	a := analyzer(t, lbSrc)
	sl, err := a.Backward(sendCriteria(a))
	if err != nil {
		t.Fatal(err)
	}
	origLoC := lang.CountLoC(a.Prog)
	sliceLoC := a.SliceLoC(sl)
	if sliceLoC >= origLoC {
		t.Errorf("slice LoC %d not smaller than original %d", sliceLoC, origLoC)
	}
	if sliceLoC == 0 {
		t.Error("slice is empty")
	}
}

func TestSliceReconstructionReparses(t *testing.T) {
	a := analyzer(t, lbSrc)
	sl, err := a.Backward(sendCriteria(a))
	if err != nil {
		t.Fatal(err)
	}
	printed := lang.Print(a.Reconstruct(sl))
	if _, err := lang.Parse(printed); err != nil {
		t.Fatalf("slice does not re-parse: %v\n%s", err, printed)
	}
}

func TestSliceKeepsEarlyReturn(t *testing.T) {
	a := analyzer(t, lbSrc)
	sl, err := a.Backward(sendCriteria(a))
	if err != nil {
		t.Fatal(err)
	}
	printed := lang.Print(a.Reconstruct(sl))
	// The `return` in the outbound-miss arm shapes whether send() runs;
	// jump handling must keep it even though drop_stat is gone.
	if !strings.Contains(printed, "return;") {
		t.Errorf("early return lost from slice:\n%s", printed)
	}
}

func TestSliceFromStateUpdate(t *testing.T) {
	a := analyzer(t, lbSrc)
	// Criterion: the assignment rr_idx = (rr_idx+1) % len(servers)
	var crit int
	a.Prog.WalkStmts(func(s lang.Stmt) {
		if as, ok := s.(*lang.AssignStmt); ok && len(as.LHS) == 1 {
			if id, ok := as.LHS[0].(*lang.Ident); ok && id.Name == "rr_idx" {
				if _, isInit := as.RHS[0].(*lang.IntLit); !isInit {
					crit = s.StmtID()
				}
			}
		}
	})
	if crit == 0 {
		t.Fatal("criterion statement not found")
	}
	sl, err := a.Backward([]int{crit})
	if err != nil {
		t.Fatal(err)
	}
	printed := lang.Print(a.Reconstruct(sl))
	for _, want := range []string{"rr_idx", "mode", "f2b_nat", "dp == LB_PORT"} {
		if !strings.Contains(printed, want) {
			t.Errorf("state slice missing %q:\n%s", want, printed)
		}
	}
	if strings.Contains(printed, "cur_port") {
		t.Errorf("state slice for rr_idx should not include cur_port:\n%s", printed)
	}
}

func TestControlDependenceBringsGuards(t *testing.T) {
	a := analyzer(t, `
x = 0;
func process(pkt) {
    if pkt.ttl > 0 {
        send(pkt);
    }
}`)
	sl, err := a.Backward(sendCriteria(a))
	if err != nil {
		t.Fatal(err)
	}
	printed := lang.Print(a.Reconstruct(sl))
	if !strings.Contains(printed, "ttl") {
		t.Errorf("guard condition missing from slice:\n%s", printed)
	}
	if strings.Contains(printed, "x = 0") {
		t.Errorf("unrelated global kept:\n%s", printed)
	}
}

func TestUnionAndSortedIDs(t *testing.T) {
	u := Union(map[int]bool{1: true, 3: true}, map[int]bool{2: true, 3: true})
	ids := SortedIDs(u)
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Errorf("union ids = %v", ids)
	}
}

func TestSliceThroughInlinedHelper(t *testing.T) {
	a := analyzer(t, `
N = 2;
junk = 0;
func pick(x) {
    v = x % N;
    return v;
}
func process(pkt) {
    junk = junk + 1;
    i = pick(pkt.sport);
    pkt.dport = i;
    send(pkt);
}`)
	sl, err := a.Backward(sendCriteria(a))
	if err != nil {
		t.Fatal(err)
	}
	printed := lang.Print(a.Reconstruct(sl))
	if !strings.Contains(printed, "% N") {
		t.Errorf("inlined helper body missing from slice:\n%s", printed)
	}
	if strings.Contains(printed, "junk") {
		t.Errorf("junk counter leaked into slice:\n%s", printed)
	}
}

func TestBadCriterion(t *testing.T) {
	a := analyzer(t, `func process(pkt) { send(pkt); }`)
	if _, err := a.Backward([]int{99999}); err == nil {
		t.Error("bogus criterion did not error")
	}
}
