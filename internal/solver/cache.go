package solver

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"nfactor/internal/perf"
	"nfactor/internal/trace"
)

// Cache memoizes the solver's two hot entry points — SatConj over literal
// conjunctions and Simplify over single terms — behind a concurrency-safe
// map. One Cache is shared across all workers of a symbolic-execution run
// and across the pipeline's repeated per-NF calls (original SE, slice SE,
// model SE, accuracy checks), which hit many identical path prefixes.
//
// Soundness of the conjunction key relies on SatConj being invariant
// under permutation and duplication of its literal set (conjunction is
// commutative and idempotent); the cache canonicalizes the literal set —
// sorted by Key(), deduplicated — and evaluates exactly that canonical
// form, so a cached verdict is always the verdict of the canonical
// conjunction. Permutation invariance of SatConj itself is covered by
// property tests in permutation_test.go.
type Cache struct {
	sat   sync.Map // canonical conjunction key -> bool
	split sync.Map // canonical conjunction key -> bool (SatSplit verdicts)
	simp  sync.Map // term key -> Term

	satHits    atomic.Int64
	satMisses  atomic.Int64
	simpHits   atomic.Int64
	simpMisses atomic.Int64

	// Mirrored perf counters (nil-safe no-ops when unattached).
	satHitC, satMissC, simpHitC, simpMissC *perf.Counter

	// tr, when attached, receives a sampled "solver.cache" counter track
	// (cumulative hits/misses, one sample every traceSampleEvery lookups —
	// emitting every lookup would dwarf the span events in the trace).
	tr  atomic.Pointer[trace.Tracer]
	trN atomic.Int64
}

// traceSampleEvery is the cache-lookup sampling period for trace counter
// events.
const traceSampleEvery = 64

// AttachTracer routes a sampled hit/miss counter track into tr (nil
// detaches). Safe to call concurrently with lookups.
func (c *Cache) AttachTracer(tr *trace.Tracer) {
	if c == nil {
		return
	}
	c.tr.Store(tr)
}

// traceSample emits the cumulative hit/miss counts as a trace counter
// event on every traceSampleEvery-th lookup. The unattached fast path is
// one atomic load.
func (c *Cache) traceSample() {
	tr := c.tr.Load()
	if tr == nil {
		return
	}
	if c.trN.Add(1)%traceSampleEvery != 1 {
		return
	}
	tr.Counter("solver.cache", map[string]int64{
		"sat_hits":        c.satHits.Load(),
		"sat_misses":      c.satMisses.Load(),
		"simplify_hits":   c.simpHits.Load(),
		"simplify_misses": c.simpMisses.Load(),
	})
}

// NewCache returns an empty cache.
func NewCache() *Cache { return NewCacheWithPerf(nil) }

// NewCacheWithPerf returns an empty cache that additionally mirrors its
// hit/miss counts into s's solver.* counters (s may be nil). Attachment
// happens at construction so shared use across goroutines stays race-free.
func NewCacheWithPerf(s *perf.Set) *Cache {
	return &Cache{
		satHitC:   s.Counter(perf.CSatCacheHit),
		satMissC:  s.Counter(perf.CSatCacheMiss),
		simpHitC:  s.Counter(perf.CSimpCacheHit),
		simpMissC: s.Counter(perf.CSimpCacheMiss),
	}
}

// CacheStats is a point-in-time snapshot of hit/miss counts.
type CacheStats struct {
	SatHits, SatMisses   int64
	SimpHits, SimpMisses int64
}

// SatHitRate returns the SatConj hit fraction in [0,1] (0 when unused).
func (s CacheStats) SatHitRate() float64 {
	total := s.SatHits + s.SatMisses
	if total == 0 {
		return 0
	}
	return float64(s.SatHits) / float64(total)
}

// Stats returns the cache's hit/miss counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		SatHits:    c.satHits.Load(),
		SatMisses:  c.satMisses.Load(),
		SimpHits:   c.simpHits.Load(),
		SimpMisses: c.simpMisses.Load(),
	}
}

// canonLits returns lits sorted by Key with exact duplicates removed,
// plus the joined canonical cache key.
func canonLits(lits []Term) ([]Term, string) {
	keys := make([]string, len(lits))
	order := make([]int, len(lits))
	for i, l := range lits {
		keys[i] = l.Key()
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	canon := make([]Term, 0, len(lits))
	parts := make([]string, 0, len(lits))
	prev := ""
	for n, i := range order {
		if n > 0 && keys[i] == prev {
			continue
		}
		prev = keys[i]
		canon = append(canon, lits[i])
		parts = append(parts, keys[i])
	}
	return canon, strings.Join(parts, "\x00")
}

// SatConj is the memoized form of solver.SatConj. A nil cache falls
// through to the direct procedure.
func (c *Cache) SatConj(lits []Term) bool {
	if c == nil {
		return SatConj(lits)
	}
	canon, key := canonLits(lits)
	if v, ok := c.sat.Load(key); ok {
		c.satHits.Add(1)
		c.satHitC.Inc()
		c.traceSample()
		return v.(bool)
	}
	c.satMisses.Add(1)
	c.satMissC.Inc()
	c.traceSample()
	res := SatConj(canon)
	c.sat.Store(key, res)
	return res
}

// SatSplit is the memoized form of solver.SatSplit. It keeps its own key
// space: the case-split procedure can prove conjunctions unsatisfiable
// that plain SatConj reports satisfiable, so the two verdicts must never
// share an entry. Like SatConj, the canonical (sorted, deduplicated)
// literal set is what gets decided — SatSplit inherits SatConj's
// permutation/duplication invariance, and the split step itself only
// removes one literal and appends one, preserving set semantics. Network
// topology exploration hits this hard: per-node config grounding turns
// two nodes running the same NF with the same configuration into
// byte-identical grounded terms, so verdicts transfer across nodes.
func (c *Cache) SatSplit(lits []Term) bool {
	if c == nil {
		return SatSplit(lits)
	}
	canon, key := canonLits(lits)
	if v, ok := c.split.Load(key); ok {
		c.satHits.Add(1)
		c.satHitC.Inc()
		c.traceSample()
		return v.(bool)
	}
	c.satMisses.Add(1)
	c.satMissC.Inc()
	c.traceSample()
	res := SatSplit(canon)
	c.split.Store(key, res)
	return res
}

// Implies is the memoized form of solver.Implies.
func (c *Cache) Implies(from []Term, lit Term) bool {
	neg := append(append([]Term{}, from...), Not(lit))
	return !c.SatConj(neg)
}

// ImpliesAll is the memoized form of solver.ImpliesAll.
func (c *Cache) ImpliesAll(from, to []Term) bool {
	for _, l := range to {
		if !c.Implies(from, l) {
			return false
		}
	}
	return true
}

// EquivConj is the memoized form of solver.EquivConj.
func (c *Cache) EquivConj(a, b []Term) bool {
	return c.ImpliesAll(a, b) && c.ImpliesAll(b, a)
}

// Simplify is the memoized form of solver.Simplify, keyed on the term's
// canonical Key. A nil cache falls through.
func (c *Cache) Simplify(t Term) Term {
	if c == nil {
		return Simplify(t)
	}
	key := t.Key()
	if v, ok := c.simp.Load(key); ok {
		c.simpHits.Add(1)
		c.simpHitC.Inc()
		c.traceSample()
		return v.(Term)
	}
	c.simpMisses.Add(1)
	c.simpMissC.Inc()
	c.traceSample()
	res := Simplify(t)
	c.simp.Store(key, res)
	return res
}
