package solver

import (
	"sync"
	"testing"

	"nfactor/internal/value"
)

func sampleLits() []Term {
	return []Term{
		Bin{Op: "==", X: Var{Name: "pkt.dport"}, Y: Const{V: value.Int(80)}},
		In{K: Var{Name: "pkt.sip"}, M: MapVar{Name: "m@0"}},
		Bin{Op: ">", X: Var{Name: "pkt.ttl"}, Y: Const{V: value.Int(0)}},
	}
}

func TestCacheSatConjAgreesWithDirect(t *testing.T) {
	c := NewCache()
	cases := [][]Term{
		sampleLits(),
		{
			Bin{Op: "==", X: Var{Name: "x"}, Y: Const{V: value.Int(1)}},
			Bin{Op: "==", X: Var{Name: "x"}, Y: Const{V: value.Int(2)}},
		},
		{},
		{Const{V: value.Bool(false)}},
	}
	for i, lits := range cases {
		want := SatConj(lits)
		if got := c.SatConj(lits); got != want {
			t.Errorf("case %d: cached=%v direct=%v (cold)", i, got, want)
		}
		if got := c.SatConj(lits); got != want {
			t.Errorf("case %d: cached=%v direct=%v (warm)", i, got, want)
		}
	}
	st := c.Stats()
	if st.SatMisses != int64(len(cases)) || st.SatHits != int64(len(cases)) {
		t.Errorf("stats = %+v, want %d misses and %d hits", st, len(cases), len(cases))
	}
}

// TestCacheHitsPermutedAndDuplicatedConjunction: the canonical key makes
// a reordered or duplicated literal set hit the entry of the original.
func TestCacheHitsPermutedAndDuplicatedConjunction(t *testing.T) {
	c := NewCache()
	lits := sampleLits()
	want := c.SatConj(lits)

	perm := []Term{lits[2], lits[0], lits[1]}
	if got := c.SatConj(perm); got != want {
		t.Errorf("permuted verdict %v != %v", got, want)
	}
	dup := append(append([]Term{}, lits...), lits[0], lits[1])
	if got := c.SatConj(dup); got != want {
		t.Errorf("duplicated verdict %v != %v", got, want)
	}
	st := c.Stats()
	if st.SatMisses != 1 {
		t.Errorf("misses = %d, want 1 (permutation and duplication share the key)", st.SatMisses)
	}
	if st.SatHits != 2 {
		t.Errorf("hits = %d, want 2", st.SatHits)
	}
}

func TestCacheImpliesAgreesWithDirect(t *testing.T) {
	c := NewCache()
	from := []Term{Bin{Op: "==", X: Var{Name: "x"}, Y: Const{V: value.Int(5)}}}
	yes := Bin{Op: ">", X: Var{Name: "x"}, Y: Const{V: value.Int(1)}}
	no := Bin{Op: ">", X: Var{Name: "x"}, Y: Const{V: value.Int(9)}}
	if c.Implies(from, yes) != Implies(from, yes) {
		t.Error("Implies(yes) disagrees with direct solver")
	}
	if c.Implies(from, no) != Implies(from, no) {
		t.Error("Implies(no) disagrees with direct solver")
	}
	if !c.ImpliesAll(from, []Term{yes}) || c.ImpliesAll(from, []Term{yes, no}) {
		t.Error("ImpliesAll verdicts wrong")
	}
	if !c.EquivConj(from, from) {
		t.Error("EquivConj(a, a) = false")
	}
}

func TestCacheSimplify(t *testing.T) {
	c := NewCache()
	term := Bin{Op: "+", X: Const{V: value.Int(2)}, Y: Const{V: value.Int(3)}}
	want := Simplify(term)
	if got := c.Simplify(term); got.Key() != want.Key() {
		t.Errorf("cached Simplify = %s, want %s", got.Key(), want.Key())
	}
	c.Simplify(term)
	st := c.Stats()
	if st.SimpMisses != 1 || st.SimpHits != 1 {
		t.Errorf("simplify stats = %+v, want 1 miss / 1 hit", st)
	}
}

// TestNilCacheFallsThrough: a nil *Cache is a valid receiver that
// delegates to the direct procedures, so call sites need no nil checks.
func TestNilCacheFallsThrough(t *testing.T) {
	var c *Cache
	lits := sampleLits()
	if c.SatConj(lits) != SatConj(lits) {
		t.Error("nil cache SatConj differs")
	}
	term := Bin{Op: "+", X: Var{Name: "x"}, Y: Const{V: value.Int(0)}}
	if c.Simplify(term).Key() != Simplify(term).Key() {
		t.Error("nil cache Simplify differs")
	}
	if c.Stats() != (CacheStats{}) {
		t.Error("nil cache stats non-zero")
	}
}

// TestCacheConcurrentAccess hammers one cache from many goroutines; run
// under `go test -race` (see `make race`) this doubles as the data-race
// check for the shared-across-workers usage.
func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache()
	lits := sampleLits()
	unsat := []Term{
		Bin{Op: "==", X: Var{Name: "x"}, Y: Const{V: value.Int(1)}},
		Bin{Op: "==", X: Var{Name: "x"}, Y: Const{V: value.Int(2)}},
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !c.SatConj(lits) {
					t.Error("sat set reported unsat")
					return
				}
				if c.SatConj(unsat) {
					t.Error("unsat set reported sat")
					return
				}
				c.Simplify(Bin{Op: "+", X: Var{Name: "x"}, Y: Const{V: value.Int(int64(g))}})
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.SatHits+st.SatMisses != 8*200*2 {
		t.Errorf("sat lookups = %d, want %d", st.SatHits+st.SatMisses, 8*200*2)
	}
	if st.SatHitRate() < 0.9 {
		t.Errorf("hit rate %.2f, want near 1 under repetition", st.SatHitRate())
	}
}

func TestCacheStatsHitRate(t *testing.T) {
	if r := (CacheStats{}).SatHitRate(); r != 0 {
		t.Errorf("empty hit rate = %v, want 0", r)
	}
	if r := (CacheStats{SatHits: 3, SatMisses: 1}).SatHitRate(); r != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", r)
	}
}
