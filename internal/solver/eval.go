package solver

import (
	"fmt"

	"nfactor/internal/value"
)

// Env resolves symbolic variable names to concrete values during model
// interpretation: packet fields ("pkt.sip"), state snapshots ("rr_idx@0",
// "f2b_nat@0") and symbolic configuration scalars ("mode").
type Env interface {
	Lookup(name string) (value.Value, bool)
}

// MapEnv is an Env backed by a plain map.
type MapEnv map[string]value.Value

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (value.Value, bool) {
	v, ok := m[name]
	return v, ok
}

// Eval evaluates a term to a concrete value under env. Store/Del terms
// evaluate functionally: they clone the underlying map, so evaluating a
// state-update term never mutates the environment.
func Eval(t Term, env Env) (value.Value, error) {
	switch x := t.(type) {
	case Const:
		return x.V, nil
	case NamedConst:
		return x.V, nil
	case Var:
		v, ok := env.Lookup(x.Name)
		if !ok {
			return value.Value{}, fmt.Errorf("solver: unbound variable %q", x.Name)
		}
		return v, nil
	case MapVar:
		v, ok := env.Lookup(x.Name)
		if !ok {
			return value.Value{}, fmt.Errorf("solver: unbound map %q", x.Name)
		}
		if v.Kind != value.KindMap {
			return value.Value{}, fmt.Errorf("solver: %q is %s, want map", x.Name, v.Kind)
		}
		return v, nil
	case Bin:
		return evalBin(x, env)
	case Un:
		v, err := Eval(x.X, env)
		if err != nil {
			return value.Value{}, err
		}
		return value.UnOp(x.Op, v)
	case Call:
		args := make([]value.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := Eval(a, env)
			if err != nil {
				return value.Value{}, err
			}
			args[i] = v
		}
		switch x.Fn {
		case "hash":
			if len(args) != 1 {
				return value.Value{}, fmt.Errorf("solver: hash arity %d", len(args))
			}
			h, err := value.Hash(args[0])
			if err != nil {
				return value.Value{}, err
			}
			return value.Int(h), nil
		case "len":
			if len(args) != 1 {
				return value.Value{}, fmt.Errorf("solver: len arity %d", len(args))
			}
			n, err := args[0].Len()
			if err != nil {
				return value.Value{}, err
			}
			return value.Int(int64(n)), nil
		case "contains":
			if len(args) != 2 || args[0].Kind != value.KindStr || args[1].Kind != value.KindStr {
				return value.Value{}, fmt.Errorf("solver: contains wants two strings")
			}
			return value.Bool(containsStr(args[0].S, args[1].S)), nil
		default:
			return value.Value{}, fmt.Errorf("solver: cannot evaluate uninterpreted %q", x.Fn)
		}
	case Tuple:
		elems := make([]value.Value, len(x.Elems))
		for i, e := range x.Elems {
			v, err := Eval(e, env)
			if err != nil {
				return value.Value{}, err
			}
			elems[i] = v
		}
		return value.TupleOf(elems...), nil
	case Index:
		c, err := Eval(x.X, env)
		if err != nil {
			return value.Value{}, err
		}
		i, err := Eval(x.I, env)
		if err != nil {
			return value.Value{}, err
		}
		return value.Index(c, i)
	case Select:
		m, err := Eval(x.M, env)
		if err != nil {
			return value.Value{}, err
		}
		k, err := Eval(x.K, env)
		if err != nil {
			return value.Value{}, err
		}
		return value.Index(m, k)
	case Store:
		m, err := Eval(x.M, env)
		if err != nil {
			return value.Value{}, err
		}
		if m.Kind != value.KindMap {
			return value.Value{}, fmt.Errorf("solver: store into %s", m.Kind)
		}
		k, err := Eval(x.K, env)
		if err != nil {
			return value.Value{}, err
		}
		v, err := Eval(x.V, env)
		if err != nil {
			return value.Value{}, err
		}
		out := m.Clone()
		if err := out.Map.Set(k, v); err != nil {
			return value.Value{}, err
		}
		return out, nil
	case Del:
		m, err := Eval(x.M, env)
		if err != nil {
			return value.Value{}, err
		}
		if m.Kind != value.KindMap {
			return value.Value{}, fmt.Errorf("solver: del on %s", m.Kind)
		}
		k, err := Eval(x.K, env)
		if err != nil {
			return value.Value{}, err
		}
		out := m.Clone()
		if err := out.Map.Delete(k); err != nil {
			return value.Value{}, err
		}
		return out, nil
	case In:
		m, err := Eval(x.M, env)
		if err != nil {
			return value.Value{}, err
		}
		if m.Kind != value.KindMap {
			return value.Value{}, fmt.Errorf("solver: `in` on %s", m.Kind)
		}
		k, err := Eval(x.K, env)
		if err != nil {
			return value.Value{}, err
		}
		_, ok, err := m.Map.Get(k)
		if err != nil {
			return value.Value{}, err
		}
		return value.Bool(ok), nil
	default:
		return value.Value{}, fmt.Errorf("solver: cannot evaluate %T", t)
	}
}

func evalBin(x Bin, env Env) (value.Value, error) {
	if x.Op == "&&" || x.Op == "||" {
		l, err := Eval(x.X, env)
		if err != nil {
			return value.Value{}, err
		}
		lb, err := l.IsTruthy()
		if err != nil {
			return value.Value{}, err
		}
		if (x.Op == "&&" && !lb) || (x.Op == "||" && lb) {
			return value.Bool(lb), nil
		}
		r, err := Eval(x.Y, env)
		if err != nil {
			return value.Value{}, err
		}
		rb, err := r.IsTruthy()
		if err != nil {
			return value.Value{}, err
		}
		return value.Bool(rb), nil
	}
	l, err := Eval(x.X, env)
	if err != nil {
		return value.Value{}, err
	}
	r, err := Eval(x.Y, env)
	if err != nil {
		return value.Value{}, err
	}
	return value.BinOp(x.Op, l, r)
}

// EvalBool evaluates a boolean term under env.
func EvalBool(t Term, env Env) (bool, error) {
	v, err := Eval(t, env)
	if err != nil {
		return false, err
	}
	return v.IsTruthy()
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
