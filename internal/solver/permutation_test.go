// Permutation-invariance property tests: SatConj must return the same
// verdict for every ordering (and duplication) of a literal set. The
// solver cache's canonical key — sorted, deduplicated literals — is only
// sound because of this property, so it is tested here on literal sets
// drawn from real corpus path conditions, not just handcrafted ones.
//
// This is an external test package so it can run the full pipeline
// (internal/core imports internal/solver; the reverse import is fine in
// a _test package).
package solver_test

import (
	"fmt"
	"math/rand"
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/nfs"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// corpusLiteralSets harvests every path condition the pipeline produces
// on the corpus NFs — the literal sets the cache actually sees.
func corpusLiteralSets(t *testing.T) [][]solver.Term {
	t.Helper()
	var sets [][]solver.Term
	for _, name := range nfs.Names() {
		nf, err := nfs.Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		an, err := core.Analyze(name, nf.Prog, core.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, p := range an.Paths {
			if len(p.Conds) > 1 {
				sets = append(sets, p.Conds)
			}
		}
	}
	if len(sets) == 0 {
		t.Fatal("no multi-literal path conditions harvested from the corpus")
	}
	return sets
}

func permuted(rng *rand.Rand, lits []solver.Term) []solver.Term {
	out := append([]solver.Term{}, lits...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func TestSatConjPermutationInvariantOnCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for si, lits := range corpusLiteralSets(t) {
		want := solver.SatConj(lits)
		for trial := 0; trial < 8; trial++ {
			perm := permuted(rng, lits)
			if got := solver.SatConj(perm); got != want {
				t.Fatalf("set %d trial %d: SatConj(perm) = %v, SatConj(orig) = %v\nperm: %v",
					si, trial, got, want, perm)
			}
		}
		// Duplication must not change the verdict either (idempotence) —
		// the cache's canonical form also deduplicates.
		dup := append(append([]solver.Term{}, lits...), lits[rng.Intn(len(lits))])
		if got := solver.SatConj(dup); got != want {
			t.Fatalf("set %d: SatConj(dup) = %v, want %v", si, got, want)
		}
	}
}

// TestSatConjPermutationInvariantUnsat adds contradiction literals to
// corpus-drawn sets so the property is exercised on unsat conjunctions
// too (the corpus paths are all feasible by construction).
func TestSatConjPermutationInvariantUnsat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sets := corpusLiteralSets(t)
	for si, lits := range sets {
		if si >= 20 {
			break
		}
		// Contradict the first literal: lits && !lits[0] is unsat.
		contradicted := append(append([]solver.Term{}, lits...), solver.Not(lits[0]))
		want := solver.SatConj(contradicted)
		for trial := 0; trial < 8; trial++ {
			perm := permuted(rng, contradicted)
			if got := solver.SatConj(perm); got != want {
				t.Fatalf("set %d trial %d: SatConj(perm) = %v, want %v", si, trial, got, want)
			}
		}
	}
}

// TestCacheMatchesDirectOnCorpus: the memoized verdict equals the direct
// verdict for every harvested set and several of its permutations — the
// end-to-end soundness statement for the canonical-key scheme.
func TestCacheMatchesDirectOnCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cache := solver.NewCache()
	for si, lits := range corpusLiteralSets(t) {
		want := solver.SatConj(lits)
		for trial := 0; trial < 4; trial++ {
			perm := permuted(rng, lits)
			if got := cache.SatConj(perm); got != want {
				t.Fatalf("set %d trial %d: cache.SatConj = %v, direct = %v", si, trial, got, want)
			}
		}
	}
	if st := cache.Stats(); st.SatHits == 0 {
		t.Errorf("permuted lookups produced no hits: %+v", st)
	}
}

func ExampleCache() {
	c := solver.NewCache()
	x := solver.Var{Name: "x"}
	lits := []solver.Term{solver.Bin{Op: ">", X: x, Y: solver.Const{V: value.Int(1)}}}
	fmt.Println(c.SatConj(lits), c.SatConj(lits))
	st := c.Stats()
	fmt.Println(st.SatMisses, st.SatHits)
	// Output:
	// true true
	// 1 1
}
