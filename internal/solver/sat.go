package solver

import (
	"math"

	"nfactor/internal/value"
)

// SatConj reports whether the conjunction of boolean literals could be
// satisfiable. It is a conservative decision procedure (sound for
// "unsat": a false result is a proof; a true result may be spurious for
// constraints beyond its theory). The procedure combines:
//
//   - constant folding / map axioms (Simplify),
//   - equality propagation via union-find with congruence by substitution,
//   - interval reasoning over integer bounds,
//   - membership-consistency over symbolic maps.
//
// This mirrors the role KLEE's solver plays in the paper's pipeline:
// pruning infeasible execution paths during symbolic execution.
func SatConj(lits []Term) bool {
	work := flatten(lits)
	for round := 0; round < 8; round++ {
		// Trivial checks.
		var next []Term
		for _, l := range work {
			l = Simplify(l)
			if b, ok := IsConstBool(l); ok {
				if !b {
					return false
				}
				continue
			}
			next = append(next, l)
		}
		work = next

		// Only genuine equalities feed the union-find. Asserting bare
		// boolean literals (b, k in m, …) as equal-to-true here would be
		// circular: substitution would rewrite each literal into its own
		// assertion and erase the fact. Their consistency is checked in
		// checkResidual instead.
		uf := newUnionFind()
		okEq := true
		for _, l := range work {
			if x, ok := l.(Bin); ok && x.Op == "==" {
				if !uf.unite(x.X, x.Y) {
					okEq = false
				}
			}
		}
		if !okEq {
			return false // two distinct constants in one class
		}

		subst := uf.substitution()
		changed := false
		for i, l := range work {
			nl := Simplify(substitute(l, subst))
			if nl.Key() != l.Key() {
				changed = true
			}
			work[i] = nl
		}
		if changed {
			continue
		}
		return checkResidual(work)
	}
	return checkResidual(work)
}

// Implies reports whether the conjunction `from` entails the literal
// `lit`: it holds when from ∧ ¬lit is unsatisfiable.
func Implies(from []Term, lit Term) bool {
	neg := append(append([]Term{}, from...), Not(lit))
	return !SatConj(neg)
}

// ImpliesAll reports whether `from` entails every literal in `to` — the
// conjunction-level implication used by the paper's path-equivalence
// accuracy check (§5).
func ImpliesAll(from, to []Term) bool {
	for _, l := range to {
		if !Implies(from, l) {
			return false
		}
	}
	return true
}

// EquivConj reports mutual implication of two conjunctions.
func EquivConj(a, b []Term) bool {
	return ImpliesAll(a, b) && ImpliesAll(b, a)
}

// flatten expands && trees into separate literals.
func flatten(lits []Term) []Term {
	var out []Term
	var add func(Term)
	add = func(t Term) {
		if b, ok := t.(Bin); ok && b.Op == "&&" {
			add(b.X)
			add(b.Y)
			return
		}
		out = append(out, t)
	}
	for _, l := range lits {
		add(Simplify(l))
	}
	return out
}

// checkResidual runs the theory checks on a stabilized literal set.
func checkResidual(lits []Term) bool {
	// Interval reasoning over integers.
	type bounds struct {
		lo, hi   int64
		excluded map[int64]bool
	}
	ivals := map[string]*bounds{}
	get := func(t Term) *bounds {
		k := t.Key()
		b, ok := ivals[k]
		if !ok {
			b = &bounds{lo: math.MinInt64, hi: math.MaxInt64, excluded: map[int64]bool{}}
			ivals[k] = b
		}
		return b
	}
	// Pairwise ordering consistency between two symbolic terms: each
	// comparison literal over the same (X, Y) pair restricts the allowed
	// relations among {<, ==, >}; an empty intersection is a
	// contradiction. This catches e.g. t <= S ∧ t > S with S symbolic,
	// which constant-interval reasoning cannot see.
	const (
		relLT uint8 = 1 << iota
		relEQ
		relGT
	)
	opMask := map[string]uint8{
		"<": relLT, "<=": relLT | relEQ,
		">": relGT, ">=": relGT | relEQ,
		"==": relEQ, "!=": relLT | relGT,
	}
	flipMask := func(m uint8) uint8 {
		out := m & relEQ
		if m&relLT != 0 {
			out |= relGT
		}
		if m&relGT != 0 {
			out |= relLT
		}
		return out
	}
	rels := map[[2]string]uint8{}
	addRel := func(x, y Term, op string) bool {
		mask, ok := opMask[op]
		if !ok {
			return true
		}
		ka, kb := x.Key(), y.Key()
		if ka == kb {
			return true // same-term comparisons fold in Simplify
		}
		if ka > kb {
			ka, kb = kb, ka
			mask = flipMask(mask)
		}
		key := [2]string{ka, kb}
		if cur, seen := rels[key]; seen {
			mask &= cur
		}
		rels[key] = mask
		return mask != 0
	}

	// Truth consistency of atomic boolean literals (membership tests,
	// boolean variables, uninterpreted boolean calls): a term asserted
	// both true and false is a contradiction.
	inTruth := map[string]bool{}
	assertTruth := func(t Term, val bool) bool {
		k := t.Key()
		if prev, seen := inTruth[k]; seen && prev != val {
			return false
		}
		inTruth[k] = val
		return true
	}

	for _, l := range lits {
		switch x := l.(type) {
		case Bin:
			t, c, op, ok := constSide(x)
			if ok {
				b := get(t)
				switch op {
				case "<":
					if c-1 < b.hi {
						b.hi = c - 1
					}
				case "<=":
					if c < b.hi {
						b.hi = c
					}
				case ">":
					if c+1 > b.lo {
						b.lo = c + 1
					}
				case ">=":
					if c > b.lo {
						b.lo = c
					}
				case "==":
					if c > b.lo {
						b.lo = c
					}
					if c < b.hi {
						b.hi = c
					}
				case "!=":
					b.excluded[c] = true
				}
			}
			if x.Op == "!=" && x.X.Key() == x.Y.Key() {
				return false
			}
			if !addRel(x.X, x.Y, x.Op) {
				return false
			}
		case In, Var, Select, Index, Call:
			if !assertTruth(l, true) {
				return false
			}
		case Un:
			if x.Op == "!" {
				if !assertTruth(x.X, false) {
					return false
				}
			}
		}
	}
	for _, b := range ivals {
		if b.lo > b.hi {
			return false
		}
		// A fully excluded singleton interval is unsat.
		if b.lo == b.hi && b.excluded[b.lo] {
			return false
		}
	}
	return true
}

// constSide normalizes a comparison with a constant integer on one side to
// (term, const, op-with-term-on-left).
func constSide(b Bin) (Term, int64, string, bool) {
	switch b.Op {
	case "<", "<=", ">", ">=", "==", "!=":
	default:
		return nil, 0, "", false
	}
	if c, ok := b.Y.(Const); ok && c.V.Kind == value.KindInt {
		return b.X, c.V.I, b.Op, true
	}
	if c, ok := b.X.(Const); ok && c.V.Kind == value.KindInt {
		return b.Y, c.V.I, flip(b.Op), true
	}
	return nil, 0, "", false
}

func flip(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// union-find over term keys, tracking a representative term per class and
// rejecting the union of two distinct constants.

type unionFind struct {
	parent map[string]string
	terms  map[string]Term
}

func newUnionFind() *unionFind {
	return &unionFind{parent: map[string]string{}, terms: map[string]Term{}}
}

func (u *unionFind) find(k string) string {
	p, ok := u.parent[k]
	if !ok || p == k {
		return k
	}
	r := u.find(p)
	u.parent[k] = r
	return r
}

func (u *unionFind) add(t Term) string {
	k := t.Key()
	if _, ok := u.terms[k]; !ok {
		u.terms[k] = t
		u.parent[k] = k
	}
	return u.find(k)
}

// unite merges the classes of a and b. It returns false when the merge is
// contradictory (two distinct constants).
func (u *unionFind) unite(a, b Term) bool {
	ra, rb := u.add(a), u.add(b)
	if ra == rb {
		return true
	}
	ta, tb := u.terms[ra], u.terms[rb]
	ca, aConst := ta.(Const)
	cb, bConst := tb.(Const)
	if aConst && bConst {
		return value.Equal(ca.V, cb.V)
	}
	// Prefer a constant representative; otherwise the smaller key.
	if bConst || (!aConst && rb < ra) {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	return true
}

// substitution returns key → representative term for every non-singleton
// class member that is not already the representative.
func (u *unionFind) substitution() map[string]Term {
	out := map[string]Term{}
	for k := range u.terms {
		r := u.find(k)
		if r != k {
			out[k] = u.terms[r]
		}
	}
	return out
}

// substitute replaces every subterm whose key appears in subst.
func substitute(t Term, subst map[string]Term) Term {
	if len(subst) == 0 {
		return t
	}
	if r, ok := subst[t.Key()]; ok {
		return r
	}
	return substituteChildren(t, subst)
}

// substituteChildren substitutes inside t's children without replacing t
// itself.
func substituteChildren(t Term, subst map[string]Term) Term {
	if len(subst) == 0 {
		return t
	}
	switch x := t.(type) {
	case Bin:
		return Bin{Op: x.Op, X: substitute(x.X, subst), Y: substitute(x.Y, subst)}
	case Un:
		return Un{Op: x.Op, X: substitute(x.X, subst)}
	case Call:
		args := make([]Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = substitute(a, subst)
		}
		return Call{Fn: x.Fn, Args: args}
	case Tuple:
		elems := make([]Term, len(x.Elems))
		for i, e := range x.Elems {
			elems[i] = substitute(e, subst)
		}
		return Tuple{Elems: elems}
	case Index:
		return Index{X: substitute(x.X, subst), I: substitute(x.I, subst)}
	case Select:
		return Select{M: substitute(x.M, subst), K: substitute(x.K, subst)}
	case Store:
		return Store{M: substitute(x.M, subst), K: substitute(x.K, subst), V: substitute(x.V, subst)}
	case Del:
		return Del{M: substitute(x.M, subst), K: substitute(x.K, subst)}
	case In:
		return In{K: substitute(x.K, subst), M: substitute(x.M, subst)}
	default:
		return t
	}
}
