package solver

import "nfactor/internal/value"

// Simplify rewrites t bottom-up with constant folding and the map/tuple
// axioms. It is deterministic and idempotent, which makes simplified keys
// canonical enough for path-set comparison.
func Simplify(t Term) Term {
	switch x := t.(type) {
	case Const, Var, MapVar, NamedConst:
		return t

	case Bin:
		X := Simplify(x.X)
		Y := Simplify(x.Y)
		return simplifyBin(x.Op, X, Y)

	case Un:
		X := Simplify(x.X)
		if c, ok := X.(Const); ok {
			if v, err := value.UnOp(x.Op, c.V); err == nil {
				return Const{V: v}
			}
		}
		if x.Op == "!" {
			return Not(X)
		}
		return Un{Op: x.Op, X: X}

	case Call:
		args := make([]Term, len(x.Args))
		allConst := true
		for i, a := range x.Args {
			args[i] = Simplify(a)
			if _, ok := args[i].(Const); !ok {
				allConst = false
			}
		}
		if allConst && len(args) == 1 {
			c := args[0].(Const)
			switch x.Fn {
			case "len":
				if n, err := c.V.Len(); err == nil {
					return Const{V: value.Int(int64(n))}
				}
			case "hash":
				if h, err := value.Hash(c.V); err == nil {
					return Const{V: value.Int(h)}
				}
			}
		}
		if x.Fn == "len" && len(args) == 1 {
			if nc, ok := args[0].(NamedConst); ok {
				if n, err := nc.V.Len(); err == nil {
					return Const{V: value.Int(int64(n))}
				}
			}
		}
		if x.Fn == "len" && len(args) == 1 {
			if tp, ok := args[0].(Tuple); ok {
				return Const{V: value.Int(int64(len(tp.Elems)))}
			}
		}
		if x.Fn == "contains" && allConst && len(args) == 2 {
			a, b := args[0].(Const), args[1].(Const)
			if a.V.Kind == value.KindStr && b.V.Kind == value.KindStr {
				return Const{V: value.Bool(containsStr(a.V.S, b.V.S))}
			}
		}
		return Call{Fn: x.Fn, Args: args}

	case Tuple:
		elems := make([]Term, len(x.Elems))
		vals := make([]value.Value, len(x.Elems))
		allConst := true
		for i, e := range x.Elems {
			elems[i] = Simplify(e)
			if c, ok := elems[i].(Const); ok {
				vals[i] = c.V
			} else {
				allConst = false
			}
		}
		if allConst {
			return Const{V: value.TupleOf(vals...)}
		}
		return Tuple{Elems: elems}

	case Index:
		X := Simplify(x.X)
		I := Simplify(x.I)
		if tp, ok := X.(Tuple); ok {
			if ci, ok := I.(Const); ok && ci.V.Kind == value.KindInt {
				if n := int(ci.V.I); n >= 0 && n < len(tp.Elems) {
					return tp.Elems[n]
				}
			}
		}
		if cv, ok := concreteValue(X); ok {
			if ci, ok := I.(Const); ok {
				if v, err := value.Index(cv, ci.V); err == nil {
					return Const{V: v}
				}
			}
		}
		return Index{X: X, I: I}

	case Select:
		M := Simplify(x.M)
		K := Simplify(x.K)
		return simplifySelect(M, K)

	case Store:
		return Store{M: Simplify(x.M), K: Simplify(x.K), V: Simplify(x.V)}

	case Del:
		return Del{M: Simplify(x.M), K: Simplify(x.K)}

	case In:
		K := Simplify(x.K)
		M := Simplify(x.M)
		return simplifyIn(K, M)

	default:
		return t
	}
}

func simplifyBin(op string, X, Y Term) Term {
	cx, xConst := X.(Const)
	cy, yConst := Y.(Const)
	if xConst && yConst {
		if v, err := value.BinOp(op, cx.V, cy.V); err == nil {
			return Const{V: v}
		}
		return Bin{Op: op, X: X, Y: Y}
	}
	switch op {
	case "==":
		if X.Key() == Y.Key() {
			return CTrue
		}
		// Tuple equality decomposes elementwise.
		if tx, ok := X.(Tuple); ok {
			if ty, ok := Y.(Tuple); ok {
				return tupleEq(tx.Elems, ty.Elems)
			}
			if cy2, ok := Y.(Const); ok && cy2.V.Kind == value.KindTuple {
				return tupleEq(tx.Elems, constElems(cy2.V))
			}
		}
		if ty, ok := Y.(Tuple); ok {
			if cx2, ok := X.(Const); ok && cx2.V.Kind == value.KindTuple {
				return tupleEq(constElems(cx2.V), ty.Elems)
			}
		}
	case "!=":
		if X.Key() == Y.Key() {
			return CFalse
		}
		eq := simplifyBin("==", X, Y)
		if b, ok := IsConstBool(eq); ok {
			return Const{V: value.Bool(!b)}
		}
		if _, isEq := eq.(Bin); !isEq {
			return Not(eq)
		}
	case "&&":
		if b, ok := IsConstBool(X); ok {
			if !b {
				return CFalse
			}
			return Y
		}
		if b, ok := IsConstBool(Y); ok {
			if !b {
				return CFalse
			}
			return X
		}
	case "||":
		if b, ok := IsConstBool(X); ok {
			if b {
				return CTrue
			}
			return Y
		}
		if b, ok := IsConstBool(Y); ok {
			if b {
				return CTrue
			}
			return X
		}
	case "<", ">":
		if X.Key() == Y.Key() {
			return CFalse
		}
	case "<=", ">=":
		if X.Key() == Y.Key() {
			return CTrue
		}
	case "+":
		// x + 0, 0 + x
		if yConst && cy.V.Kind == value.KindInt && cy.V.I == 0 {
			return X
		}
		if xConst && cx.V.Kind == value.KindInt && cx.V.I == 0 {
			return Y
		}
	case "-":
		if yConst && cy.V.Kind == value.KindInt && cy.V.I == 0 {
			return X
		}
	case "*":
		if yConst && cy.V.Kind == value.KindInt && cy.V.I == 1 {
			return X
		}
		if xConst && cx.V.Kind == value.KindInt && cx.V.I == 1 {
			return Y
		}
	}
	return Bin{Op: op, X: X, Y: Y}
}

func constElems(v value.Value) []Term {
	out := make([]Term, len(v.Tuple))
	for i, e := range v.Tuple {
		out[i] = Const{V: e}
	}
	return out
}

func tupleEq(a, b []Term) Term {
	if len(a) != len(b) {
		return CFalse
	}
	var conj Term = CTrue
	for i := range a {
		eq := simplifyBin("==", a[i], b[i])
		conj = simplifyBin("&&", conj, eq)
	}
	return conj
}

// simplifySelect applies the select-over-store axioms.
func simplifySelect(M, K Term) Term {
	for {
		switch m := M.(type) {
		case Store:
			if sameKey(m.K, K) {
				return m.V
			}
			if definitelyDifferent(m.K, K) {
				M = m.M
				continue
			}
			return Select{M: M, K: K}
		case Del:
			if definitelyDifferent(m.K, K) {
				M = m.M
				continue
			}
			return Select{M: M, K: K}
		case Const:
			if ck, ok := K.(Const); ok && m.V.Kind == value.KindMap {
				if v, found, err := m.V.Map.Get(ck.V); err == nil && found {
					return Const{V: v}
				}
			}
			return Select{M: M, K: K}
		case NamedConst:
			if ck, ok := K.(Const); ok && m.V.Kind == value.KindMap {
				if v, found, err := m.V.Map.Get(ck.V); err == nil && found {
					return Const{V: v}
				}
			}
			return Select{M: M, K: K}
		default:
			return Select{M: M, K: K}
		}
	}
}

// simplifyIn applies the membership-over-store axioms.
func simplifyIn(K, M Term) Term {
	for {
		switch m := M.(type) {
		case Store:
			if sameKey(m.K, K) {
				return CTrue
			}
			if definitelyDifferent(m.K, K) {
				M = m.M
				continue
			}
			return In{K: K, M: M}
		case Del:
			if sameKey(m.K, K) {
				return CFalse
			}
			if definitelyDifferent(m.K, K) {
				M = m.M
				continue
			}
			return In{K: K, M: M}
		case Const:
			if ck, ok := K.(Const); ok && m.V.Kind == value.KindMap {
				if _, found, err := m.V.Map.Get(ck.V); err == nil {
					return Const{V: value.Bool(found)}
				}
			}
			// Membership in the empty concrete map is false for any key.
			if m.V.Kind == value.KindMap && m.V.Map.Len() == 0 {
				return CFalse
			}
			return In{K: K, M: M}
		case NamedConst:
			if ck, ok := K.(Const); ok && m.V.Kind == value.KindMap {
				if _, found, err := m.V.Map.Get(ck.V); err == nil {
					return Const{V: value.Bool(found)}
				}
			}
			if m.V.Kind == value.KindMap && m.V.Map.Len() == 0 {
				return CFalse
			}
			return In{K: K, M: M}
		default:
			return In{K: K, M: M}
		}
	}
}

func sameKey(a, b Term) bool { return a.Key() == b.Key() }

// definitelyDifferent reports whether a and b are provably unequal
// (distinct constants, or tuples with a provably different element).
func definitelyDifferent(a, b Term) bool {
	if av, ok := concreteValue(a); ok {
		if bv, ok := concreteValue(b); ok {
			return !value.Equal(av, bv)
		}
	}
	ae, aok := tupleParts(a)
	be, bok := tupleParts(b)
	if aok && bok {
		if len(ae) != len(be) {
			return true
		}
		for i := range ae {
			if definitelyDifferent(ae[i], be[i]) {
				return true
			}
		}
	}
	return false
}

func tupleParts(t Term) ([]Term, bool) {
	switch x := t.(type) {
	case Tuple:
		return x.Elems, true
	case Const:
		if x.V.Kind == value.KindTuple {
			return constElems(x.V), true
		}
	}
	return nil, false
}

// concreteValue returns the underlying concrete value of Const and
// NamedConst terms.
func concreteValue(t Term) (value.Value, bool) {
	switch x := t.(type) {
	case Const:
		return x.V, true
	case NamedConst:
		return x.V, true
	default:
		return value.Value{}, false
	}
}
