package solver

import (
	"strings"
	"testing"

	"nfactor/internal/value"
)

func TestNamedConstBehaviour(t *testing.T) {
	servers := value.NewList(
		value.TupleOf(value.Str("1.1.1.1"), value.Int(80)),
		value.TupleOf(value.Str("2.2.2.2"), value.Int(80)),
	)
	nc := NamedConst{Name: "servers", V: servers}

	// Renders and keys by name, not by content.
	if nc.String() != "servers" {
		t.Errorf("String = %q", nc.String())
	}
	if !strings.Contains(nc.Key(), "servers") {
		t.Errorf("Key = %q", nc.Key())
	}

	// len() folds to the concrete length.
	if got := Simplify(Call{Fn: "len", Args: []Term{nc}}); got.String() != "2" {
		t.Errorf("len(servers) = %s", got)
	}
	// Concrete index folds to the element.
	got := Simplify(Index{X: nc, I: Const{V: value.Int(0)}})
	if got.String() != `("1.1.1.1", 80)` {
		t.Errorf("servers[0] = %s", got)
	}
	// Symbolic index keeps the name.
	got = Simplify(Index{X: nc, I: Var{Name: "rr_idx@0"}})
	if got.String() != "servers[rr_idx@0]" {
		t.Errorf("servers[sym] = %s", got)
	}
	// Eval resolves to the concrete value.
	v, err := Eval(nc, MapEnv{})
	if err != nil || v.Kind != value.KindList {
		t.Errorf("Eval(named const) = %v, %v", v, err)
	}
}

func TestNamedConstMapMembership(t *testing.T) {
	m := value.NewMap()
	_ = m.Map.Set(value.TupleOf(value.Str("tcp"), value.Int(23)), value.Str("telnet"))
	nc := NamedConst{Name: "blocked", V: m}

	// Concrete key folds.
	k := Const{V: value.TupleOf(value.Str("tcp"), value.Int(23))}
	if got := Simplify(In{K: k, M: nc}); got.String() != "true" {
		t.Errorf("concrete membership = %s", got)
	}
	miss := Const{V: value.TupleOf(value.Str("tcp"), value.Int(80))}
	if got := Simplify(In{K: miss, M: nc}); got.String() != "false" {
		t.Errorf("concrete miss = %s", got)
	}
	// Symbolic key keeps the atom with the name.
	symK := Tuple{Elems: []Term{Var{Name: "pkt.proto"}, Var{Name: "pkt.dport"}}}
	got := Simplify(In{K: symK, M: nc})
	if got.String() != "(pkt.proto, pkt.dport) in blocked" {
		t.Errorf("symbolic membership = %s", got)
	}
	// Select folds on concrete key.
	if got := Simplify(Select{M: nc, K: k}); got.String() != `"telnet"` {
		t.Errorf("select = %s", got)
	}
	// Empty named map: any membership is false.
	empty := NamedConst{Name: "none", V: value.NewMap()}
	if got := Simplify(In{K: symK, M: empty}); got.String() != "false" {
		t.Errorf("membership in empty named map = %s", got)
	}
}

func TestSymbolicRelationContradictions(t *testing.T) {
	x := Var{Name: "x"}
	s := Var{Name: "LIMIT"}
	unsat := [][]Term{
		{Bin{Op: "<=", X: x, Y: s}, Bin{Op: ">", X: x, Y: s}},
		{Bin{Op: "<", X: x, Y: s}, Bin{Op: ">=", X: x, Y: s}},
		{Bin{Op: "<", X: x, Y: s}, Bin{Op: "==", X: x, Y: s}},
		{Bin{Op: "<", X: x, Y: s}, Bin{Op: ">", X: x, Y: s}},
		// flipped orientation on one side
		{Bin{Op: "<", X: x, Y: s}, Bin{Op: "<", X: s, Y: x}},
	}
	for i, c := range unsat {
		if SatConj(c) {
			t.Errorf("case %d should be unsat", i)
		}
	}
	sat := [][]Term{
		{Bin{Op: "<=", X: x, Y: s}, Bin{Op: "<", X: x, Y: s}},
		{Bin{Op: "!=", X: x, Y: s}, Bin{Op: "<", X: x, Y: s}},
		{Bin{Op: ">=", X: x, Y: s}, Bin{Op: "<=", X: x, Y: s}}, // x == s possible
	}
	for i, c := range sat {
		if !SatConj(c) {
			t.Errorf("sat case %d judged unsat", i)
		}
	}
}

func TestEvalBooleanShortCircuit(t *testing.T) {
	env := MapEnv{"a": value.Bool(true), "b": value.Bool(false), "n": value.Int(3)}
	cases := []struct {
		t    Term
		want bool
	}{
		{Bin{Op: "&&", X: Var{Name: "a"}, Y: Var{Name: "b"}}, false},
		{Bin{Op: "||", X: Var{Name: "a"}, Y: Var{Name: "b"}}, true},
		{Bin{Op: "||", X: Var{Name: "b"}, Y: Var{Name: "b"}}, false},
		{Un{Op: "!", X: Var{Name: "b"}}, true},
		{Bin{Op: "<", X: Var{Name: "n"}, Y: Const{V: value.Int(5)}}, true},
	}
	for _, c := range cases {
		got, err := EvalBool(c.t, env)
		if err != nil || got != c.want {
			t.Errorf("EvalBool(%s) = %v, %v; want %v", c.t, got, err, c.want)
		}
	}
	// Short-circuit must not evaluate the unbound right side.
	got, err := EvalBool(Bin{Op: "&&", X: Var{Name: "b"}, Y: Var{Name: "unbound"}}, env)
	if err != nil || got {
		t.Errorf("short-circuit && = %v, %v", got, err)
	}
	got, err = EvalBool(Bin{Op: "||", X: Var{Name: "a"}, Y: Var{Name: "unbound"}}, env)
	if err != nil || !got {
		t.Errorf("short-circuit || = %v, %v", got, err)
	}
}

func TestEvalContains(t *testing.T) {
	env := MapEnv{"f": value.Str("SA")}
	got, err := EvalBool(Call{Fn: "contains", Args: []Term{Var{Name: "f"}, Const{V: value.Str("S")}}}, env)
	if err != nil || !got {
		t.Errorf("contains(SA, S) = %v, %v", got, err)
	}
	got, err = EvalBool(Call{Fn: "contains", Args: []Term{Var{Name: "f"}, Const{V: value.Str("F")}}}, env)
	if err != nil || got {
		t.Errorf("contains(SA, F) = %v, %v", got, err)
	}
	if _, err := Eval(Call{Fn: "contains", Args: []Term{Const{V: value.Int(1)}, Const{V: value.Str("S")}}}, env); err == nil {
		t.Error("contains on int did not error")
	}
}

func TestEvalErrors(t *testing.T) {
	env := MapEnv{"i": value.Int(1), "m": value.NewMap()}
	bad := []Term{
		Select{M: Var{Name: "i"}, K: Const{V: value.Int(0)}},                           // index int
		Store{M: Var{Name: "i"}, K: Const{V: value.Int(0)}, V: Const{V: value.Int(1)}}, // store into int
		Del{M: Var{Name: "i"}, K: Const{V: value.Int(0)}},
		In{K: Const{V: value.Int(0)}, M: Var{Name: "i"}},
		MapVar{Name: "i"}, // bound but not a map
		MapVar{Name: "absent"},
		Un{Op: "!", X: Var{Name: "i"}},
		Bin{Op: "&&", X: Var{Name: "i"}, Y: Var{Name: "i"}},
		Call{Fn: "hash", Args: []Term{Var{Name: "m"}}}, // unhashable
		Call{Fn: "len", Args: []Term{Var{Name: "i"}}},
	}
	for _, tm := range bad {
		if _, err := Eval(tm, env); err == nil {
			t.Errorf("Eval(%s) did not error", tm)
		}
	}
}

func TestTermStringRendering(t *testing.T) {
	m := MapVar{Name: "m@0"}
	cases := []struct {
		t    Term
		want string
	}{
		{Store{M: m, K: Var{Name: "k"}, V: Const{V: value.Int(1)}}, "m@0{k := 1}"},
		{Del{M: m, K: Var{Name: "k"}}, "m@0{del k}"},
		{Select{M: m, K: Var{Name: "k"}}, "m@0[k]"},
		{In{K: Var{Name: "k"}, M: m}, "k in m@0"},
		{Un{Op: "-", X: Var{Name: "x"}}, "-x"},
		{Call{Fn: "hash", Args: []Term{Var{Name: "x"}}}, "hash(x)"},
		{Tuple{Elems: []Term{Var{Name: "a"}, Var{Name: "b"}}}, "(a, b)"},
		{Index{X: Var{Name: "t"}, I: Const{V: value.Int(0)}}, "t[0]"},
	}
	for _, c := range cases {
		if c.t.String() != c.want {
			t.Errorf("String(%T) = %q, want %q", c.t, c.t.String(), c.want)
		}
	}
}

func TestTermKeysDistinct(t *testing.T) {
	m := MapVar{Name: "m@0"}
	terms := []Term{
		Const{V: value.Int(1)},
		Var{Name: "x"},
		NamedConst{Name: "x", V: value.Int(1)},
		m,
		Bin{Op: "+", X: Var{Name: "x"}, Y: Const{V: value.Int(1)}},
		Bin{Op: "-", X: Var{Name: "x"}, Y: Const{V: value.Int(1)}},
		Un{Op: "-", X: Var{Name: "x"}},
		Call{Fn: "hash", Args: []Term{Var{Name: "x"}}},
		Tuple{Elems: []Term{Var{Name: "x"}}},
		Index{X: Var{Name: "x"}, I: Const{V: value.Int(0)}},
		Select{M: m, K: Var{Name: "x"}},
		Store{M: m, K: Var{Name: "x"}, V: Const{V: value.Int(1)}},
		Del{M: m, K: Var{Name: "x"}},
		In{K: Var{Name: "x"}, M: m},
	}
	seen := map[string]Term{}
	for _, tm := range terms {
		k := tm.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision between %s and %s: %q", prev, tm, k)
		}
		seen[k] = tm
	}
}

func TestSimplifyStoreDelChains(t *testing.T) {
	m := MapVar{Name: "m@0"}
	// select through del of a different constant key reaches the base.
	chain := Del{M: Store{M: m, K: iv(1), V: sv("one")}, K: iv(2)}
	got := Simplify(Select{M: chain, K: iv(1)})
	if got.String() != `"one"` {
		t.Errorf("select through del = %s", got)
	}
	// membership of the deleted key is false.
	if got := Simplify(In{K: iv(2), M: chain}); got.String() != "false" {
		t.Errorf("membership of deleted key = %s", got)
	}
	// tuple keys that definitely differ skip the store.
	tkey1 := Tuple{Elems: []Term{Var{Name: "pkt.sip"}, iv(1)}}
	tkey2 := Tuple{Elems: []Term{Var{Name: "pkt.sip"}, iv(2)}}
	st := Store{M: m, K: tkey1, V: iv(9)}
	got = Simplify(In{K: tkey2, M: st})
	if got.Key() != (In{K: tkey2, M: m}).Key() {
		t.Errorf("definitely-different tuple keys did not skip store: %s", got)
	}
	// same symbolic tuple key hits the store.
	if got := Simplify(In{K: tkey1, M: st}); got.String() != "true" {
		t.Errorf("same tuple key = %s", got)
	}
}

func TestFlattenConjunctions(t *testing.T) {
	conj := Bin{Op: "&&", X: Bin{Op: "&&", X: Var{Name: "a"}, Y: Var{Name: "b"}}, Y: Var{Name: "c"}}
	// a && b && c with c == false is unsat via flattening.
	if SatConj([]Term{conj, Un{Op: "!", X: Var{Name: "c"}}}) {
		t.Error("flattened conjunction conflict not detected")
	}
}

func TestRenameNamedConst(t *testing.T) {
	nc := NamedConst{Name: "servers", V: value.NewList(value.Int(1))}
	out := Rename(nc, func(s string) string { return "ns:" + s })
	if out.String() != "ns:servers" {
		t.Errorf("renamed = %s", out)
	}
	// The value travels with the rename.
	if v, err := Eval(out, MapEnv{}); err != nil || v.Kind != value.KindList {
		t.Errorf("Eval(renamed) = %v, %v", v, err)
	}
}
