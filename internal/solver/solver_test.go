package solver

import (
	"testing"
	"testing/quick"

	"nfactor/internal/value"
)

func iv(i int64) Term  { return Const{V: value.Int(i)} }
func sv(s string) Term { return Const{V: value.Str(s)} }
func v(n string) Term  { return Var{Name: n} }

func TestSimplifyConstFold(t *testing.T) {
	cases := []struct {
		in   Term
		want string
	}{
		{Bin{Op: "+", X: iv(2), Y: iv(3)}, "5"},
		{Bin{Op: "==", X: sv("a"), Y: sv("a")}, "true"},
		{Bin{Op: "==", X: v("x"), Y: v("x")}, "true"},
		{Bin{Op: "!=", X: v("x"), Y: v("x")}, "false"},
		{Un{Op: "!", X: Const{V: value.Bool(true)}}, "false"},
		{Bin{Op: "&&", X: CTrue, Y: v("b")}, "b"},
		{Bin{Op: "||", X: CTrue, Y: v("b")}, "true"},
		{Bin{Op: "+", X: v("x"), Y: iv(0)}, "x"},
		{Bin{Op: "*", X: iv(1), Y: v("x")}, "x"},
		{Call{Fn: "len", Args: []Term{Const{V: value.NewList(value.Int(1), value.Int(2))}}}, "2"},
		{Index{X: Tuple{Elems: []Term{v("a"), v("b")}}, I: iv(1)}, "b"},
		{Bin{Op: "<=", X: v("x"), Y: v("x")}, "true"},
	}
	for _, c := range cases {
		got := Simplify(c.in)
		if got.String() != c.want {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	terms := []Term{
		Bin{Op: "+", X: Bin{Op: "*", X: iv(2), Y: v("x")}, Y: iv(0)},
		In{K: Tuple{Elems: []Term{v("a"), iv(1)}}, M: Store{M: MapVar{Name: "m@0"}, K: v("k"), V: iv(9)}},
		Select{M: Store{M: MapVar{Name: "m@0"}, K: iv(1), V: iv(2)}, K: iv(3)},
	}
	for _, tm := range terms {
		once := Simplify(tm)
		twice := Simplify(once)
		if once.Key() != twice.Key() {
			t.Errorf("Simplify not idempotent on %s: %s vs %s", tm, once, twice)
		}
	}
}

func TestSelectStoreAxioms(t *testing.T) {
	m := MapVar{Name: "m@0"}
	st := Store{M: m, K: iv(1), V: sv("one")}
	if got := Simplify(Select{M: st, K: iv(1)}); got.String() != `"one"` {
		t.Errorf("select same key = %s", got)
	}
	if got := Simplify(Select{M: st, K: iv(2)}); got.Key() != (Select{M: m, K: iv(2)}).Key() {
		t.Errorf("select different const key = %s, want lookup in base", got)
	}
	sym := Select{M: st, K: v("k")}
	if got := Simplify(sym); got.Key() != sym.Key() {
		t.Errorf("select symbolic key should not reduce: %s", got)
	}
}

func TestInStoreDelAxioms(t *testing.T) {
	m := MapVar{Name: "m@0"}
	st := Store{M: m, K: iv(1), V: sv("one")}
	if got := Simplify(In{K: iv(1), M: st}); got.String() != "true" {
		t.Errorf("in stored key = %s", got)
	}
	if got := Simplify(In{K: iv(2), M: st}); got.Key() != (In{K: iv(2), M: m}).Key() {
		t.Errorf("in other key = %s", got)
	}
	d := Del{M: m, K: iv(5)}
	if got := Simplify(In{K: iv(5), M: d}); got.String() != "false" {
		t.Errorf("in deleted key = %s", got)
	}
	// Membership in a concrete empty map is false even for symbolic keys.
	empty := Const{V: value.NewMap()}
	if got := Simplify(In{K: v("k"), M: empty}); got.String() != "false" {
		t.Errorf("in empty map = %s", got)
	}
}

func TestTupleEqualityDecomposition(t *testing.T) {
	a := Tuple{Elems: []Term{v("x"), iv(1)}}
	b := Tuple{Elems: []Term{v("y"), iv(1)}}
	got := Simplify(Bin{Op: "==", X: a, Y: b})
	if got.String() != "(x == y)" {
		t.Errorf("tuple eq = %s", got)
	}
	c := Tuple{Elems: []Term{v("x"), iv(2)}}
	if got := Simplify(Bin{Op: "==", X: a, Y: c}); got.String() != "false" {
		t.Errorf("tuple eq with conflicting consts = %s", got)
	}
	d := Tuple{Elems: []Term{v("x")}}
	if got := Simplify(Bin{Op: "==", X: a, Y: d}); got.String() != "false" {
		t.Errorf("tuple eq different arity = %s", got)
	}
}

func TestNot(t *testing.T) {
	if Not(CTrue).String() != "false" {
		t.Error("!true")
	}
	if got := Not(Bin{Op: "==", X: v("x"), Y: iv(1)}); got.String() != "(x != 1)" {
		t.Errorf("negated == = %s", got)
	}
	if got := Not(Not(v("b"))); got.String() != "b" {
		t.Errorf("double negation = %s", got)
	}
	if got := Not(Bin{Op: "<", X: v("x"), Y: iv(5)}); got.String() != "(x >= 5)" {
		t.Errorf("negated < = %s", got)
	}
}

func TestSatConjBasics(t *testing.T) {
	x := v("x")
	sat := []([]Term){
		{Bin{Op: "==", X: x, Y: iv(1)}},
		{Bin{Op: "<", X: x, Y: iv(10)}, Bin{Op: ">", X: x, Y: iv(5)}},
		{In{K: x, M: MapVar{Name: "m@0"}}},
		{Bin{Op: "==", X: x, Y: iv(1)}, Bin{Op: "!=", X: v("y"), Y: iv(1)}},
	}
	for i, c := range sat {
		if !SatConj(c) {
			t.Errorf("case %d should be sat", i)
		}
	}
	unsat := []([]Term){
		{Bin{Op: "==", X: x, Y: iv(1)}, Bin{Op: "==", X: x, Y: iv(2)}},
		{Bin{Op: "==", X: x, Y: iv(1)}, Bin{Op: "!=", X: x, Y: iv(1)}},
		{Bin{Op: "<", X: x, Y: iv(5)}, Bin{Op: ">", X: x, Y: iv(5)}},
		{Bin{Op: "<=", X: x, Y: iv(5)}, Bin{Op: ">=", X: x, Y: iv(6)}},
		{CFalse},
		{In{K: x, M: MapVar{Name: "m@0"}}, Not(In{K: x, M: MapVar{Name: "m@0"}})},
		{Bin{Op: "==", X: x, Y: sv("RR")}, Bin{Op: "==", X: x, Y: sv("HASH")}},
	}
	for i, c := range unsat {
		if SatConj(c) {
			t.Errorf("case %d should be unsat", i)
		}
	}
}

func TestSatConjEqualityPropagation(t *testing.T) {
	x, y := v("x"), v("y")
	// x == y, x == 1, y == 2 → unsat
	if SatConj([]Term{
		Bin{Op: "==", X: x, Y: y},
		Bin{Op: "==", X: x, Y: iv(1)},
		Bin{Op: "==", X: y, Y: iv(2)},
	}) {
		t.Error("transitive equality conflict not detected")
	}
	// x == y, x != y → unsat
	if SatConj([]Term{
		Bin{Op: "==", X: x, Y: y},
		Bin{Op: "!=", X: x, Y: y},
	}) {
		t.Error("eq/neq conflict not detected")
	}
	// congruence through membership: x == 1, (x in m), !(1 in m) → unsat
	m := MapVar{Name: "m@0"}
	if SatConj([]Term{
		Bin{Op: "==", X: x, Y: iv(1)},
		In{K: x, M: m},
		Not(In{K: iv(1), M: m}),
	}) {
		t.Error("membership congruence conflict not detected")
	}
}

func TestSatConjMembershipThroughStore(t *testing.T) {
	m := MapVar{Name: "m@0"}
	k := v("k")
	// k in store(m, k, v) is a tautology; its negation is unsat.
	if SatConj([]Term{Not(Simplify(In{K: k, M: Store{M: m, K: k, V: iv(1)}}))}) {
		t.Error("negated membership of just-stored key should be unsat")
	}
}

func TestSatConjExcludedSingleton(t *testing.T) {
	x := v("x")
	// 3 <= x <= 3 and x != 3 → unsat
	if SatConj([]Term{
		Bin{Op: ">=", X: x, Y: iv(3)},
		Bin{Op: "<=", X: x, Y: iv(3)},
		Bin{Op: "!=", X: x, Y: iv(3)},
	}) {
		t.Error("excluded singleton not detected")
	}
}

func TestImplication(t *testing.T) {
	x := v("x")
	from := []Term{Bin{Op: "==", X: x, Y: iv(5)}}
	if !Implies(from, Bin{Op: ">", X: x, Y: iv(3)}) {
		t.Error("x==5 should imply x>3")
	}
	if Implies(from, Bin{Op: ">", X: x, Y: iv(7)}) {
		t.Error("x==5 should not imply x>7")
	}
	a := []Term{Bin{Op: "==", X: x, Y: iv(5)}, In{K: x, M: MapVar{Name: "m@0"}}}
	b := []Term{In{K: iv(5), M: MapVar{Name: "m@0"}}, Bin{Op: "==", X: x, Y: iv(5)}}
	if !EquivConj(a, b) {
		t.Error("equivalent conjunctions not recognized")
	}
}

func TestEval(t *testing.T) {
	env := MapEnv{
		"pkt.sport": value.Int(1234),
		"m@0":       value.NewMap(),
		"mode":      value.Str("RR"),
	}
	_ = env["m@0"].Map.Set(value.Int(1), value.Str("one"))

	got, err := Eval(Bin{Op: "+", X: v("pkt.sport"), Y: iv(1)}, env)
	if err != nil || got.I != 1235 {
		t.Errorf("eval add = %v, %v", got, err)
	}
	b, err := EvalBool(In{K: iv(1), M: MapVar{Name: "m@0"}}, env)
	if err != nil || !b {
		t.Errorf("eval in = %v, %v", b, err)
	}
	got, err = Eval(Select{M: MapVar{Name: "m@0"}, K: iv(1)}, env)
	if err != nil || got.S != "one" {
		t.Errorf("eval select = %v, %v", got, err)
	}
	// Store evaluates functionally: env map unchanged.
	got, err = Eval(Store{M: MapVar{Name: "m@0"}, K: iv(2), V: sv("two")}, env)
	if err != nil || got.Map.Len() != 2 {
		t.Errorf("eval store = %v, %v", got, err)
	}
	if env["m@0"].Map.Len() != 1 {
		t.Error("Eval(Store) mutated the environment")
	}
	// Del
	got, err = Eval(Del{M: MapVar{Name: "m@0"}, K: iv(1)}, env)
	if err != nil || got.Map.Len() != 0 {
		t.Errorf("eval del = %v, %v", got, err)
	}
	// Errors
	if _, err := Eval(v("absent"), env); err == nil {
		t.Error("unbound var did not error")
	}
	if _, err := Eval(Call{Fn: "mystery", Args: nil}, env); err == nil {
		t.Error("uninterpreted call did not error")
	}
}

func TestEvalHashMatchesValueHash(t *testing.T) {
	env := MapEnv{"pkt.sip": value.Str("1.2.3.4")}
	got, err := Eval(Call{Fn: "hash", Args: []Term{v("pkt.sip")}}, env)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := value.Hash(value.Str("1.2.3.4"))
	if got.I != want {
		t.Error("solver hash differs from value hash")
	}
}

func TestRenameAndVars(t *testing.T) {
	tm := Bin{Op: "==", X: Select{M: MapVar{Name: "m@0"}, K: v("k")}, Y: v("x")}
	vs := Vars(tm)
	if len(vs) != 3 || vs[0] != "k" || vs[1] != "m@0" || vs[2] != "x" {
		t.Errorf("Vars = %v", vs)
	}
	rn := Rename(tm, func(s string) string { return s + "!" })
	vs = Vars(rn)
	if vs[0] != "k!" || vs[1] != "m@0!" || vs[2] != "x!" {
		t.Errorf("renamed vars = %v", vs)
	}
}

// Property: for random small integer constraints a<=x<=b, SatConj agrees
// with the obvious emptiness check.
func TestIntervalSatProperty(t *testing.T) {
	f := func(a, b int8) bool {
		lits := []Term{
			Bin{Op: ">=", X: v("x"), Y: iv(int64(a))},
			Bin{Op: "<=", X: v("x"), Y: iv(int64(b))},
		}
		return SatConj(lits) == (int64(a) <= int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Simplify never changes the concrete meaning of a term built
// from +,-,* over two variables.
func TestSimplifySemanticsProperty(t *testing.T) {
	ops := []string{"+", "-", "*"}
	f := func(ai, bi int16, opIdx uint8, zero bool) bool {
		op := ops[int(opIdx)%3]
		var y Term = v("y")
		if zero {
			y = iv(0)
		}
		tm := Bin{Op: op, X: v("x"), Y: y}
		env := MapEnv{"x": value.Int(int64(ai)), "y": value.Int(int64(bi))}
		v1, err1 := Eval(tm, env)
		v2, err2 := Eval(Simplify(tm), env)
		if err1 != nil || err2 != nil {
			return false
		}
		return v1.I == v2.I
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
