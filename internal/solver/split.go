package solver

import "nfactor/internal/value"

// Bounds for the membership case-split: how many positive membership
// literals may be split, and how large a concrete map may be enumerated.
// Beyond either bound the check falls back to plain SatConj —
// conservative toward "satisfiable", i.e. toward reporting a term class
// feasible.
const (
	MaxMemberSplits = 6
	MaxMemberDomain = 64
)

// SatSplit decides conjunction satisfiability like SatConj, but finitely
// case-splits positive membership tests over concrete maps: `K in M`
// with M a compile-time map is equivalent to the disjunction of K == k
// over M's keys, which conjunction-level reasoning alone cannot see.
// This is what lets chain and topology composition prove, e.g., that a
// dport constrained into a firewall's egress policy can never also hit
// an IDS rule table keyed by disjoint ports. Originally private to
// internal/verify's chain pass; hoisted here so every composition layer
// (and the memoizing Cache) shares one procedure.
func SatSplit(lits []Term) bool { return satSplitDepth(lits, MaxMemberSplits) }

func satSplitDepth(lits []Term, depth int) bool {
	if depth > 0 {
		for i, l := range lits {
			in, ok := l.(In)
			if !ok {
				continue
			}
			if _, isC := in.K.(Const); isC {
				continue // concrete key: Simplify already folded or will
			}
			keys, ok := ConcreteMapKeys(in.M)
			if !ok || len(keys) > MaxMemberDomain {
				continue
			}
			rest := make([]Term, 0, len(lits))
			rest = append(rest, lits[:i]...)
			rest = append(rest, lits[i+1:]...)
			for _, kv := range keys {
				branch := append(append([]Term{}, rest...),
					Simplify(Bin{Op: "==", X: in.K, Y: Const{V: kv}}))
				if satSplitDepth(branch, depth-1) {
					return true
				}
			}
			return false // every key binding contradicts the rest
		}
	}
	return SatConj(lits)
}

// ConcreteMapKeys extracts the key values of a compile-time map term.
func ConcreteMapKeys(t Term) ([]value.Value, bool) {
	var v value.Value
	switch x := t.(type) {
	case NamedConst:
		v = x.V
	case Const:
		v = x.V
	default:
		return nil, false
	}
	if v.Kind != value.KindMap {
		return nil, false
	}
	return v.Map.Keys(), true
}
