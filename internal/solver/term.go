// Package solver implements the term language and the SMT-lite decision
// procedure behind NFactor's symbolic executor — the KLEE substitute.
//
// Terms represent symbolic values: packet header fields, the NF's initial
// state (scalars and maps), arithmetic over them, uninterpreted hash, map
// store chains and membership atoms. Path conditions are conjunctions of
// boolean terms; SatConj decides (conservatively: "satisfiable unless
// proven otherwise") whether a conjunction is feasible, which is what
// prunes infeasible branches during path exploration.
package solver

import (
	"fmt"
	"sort"
	"strings"

	"nfactor/internal/value"
)

// Term is a symbolic expression.
type Term interface {
	isTerm()
	// Key returns a canonical structural encoding (used for congruence
	// classes, dedup and path canonicalization).
	Key() string
	// String renders the term in NFLang-like concrete syntax (used for
	// Figure 6-style model rendering).
	String() string
}

// Const is a concrete value.
type Const struct{ V value.Value }

// Var is a symbolic scalar: a packet field ("pkt.sip"), the initial value
// of a state scalar ("rr_idx@0") or a symbolic configuration scalar
// ("mode").
type Var struct{ Name string }

// NamedConst is a configuration value with a known concrete content that
// should nevertheless be referenced by NAME in the model: composite
// configuration like the backend list `servers` or the rule table
// `blocked`. It folds like a constant wherever a concrete value is
// required (len, concrete indexing, membership of concrete keys) but
// survives symbolically otherwise, so the synthesized model reads
// "servers[rr_idx]" (Figure 6) rather than an inlined literal.
type NamedConst struct {
	Name string
	V    value.Value
}

// MapVar is the symbolic snapshot of a state map at invocation entry
// ("f2b_nat@0").
type MapVar struct{ Name string }

// Bin is a binary operation (+ - * / % == != < <= > >= && ||).
type Bin struct {
	Op   string
	X, Y Term
}

// Un is a unary operation (! -).
type Un struct {
	Op string
	X  Term
}

// Call is an uninterpreted or semi-interpreted function application
// (hash, len).
type Call struct {
	Fn   string
	Args []Term
}

// Tuple is a tuple construction.
type Tuple struct{ Elems []Term }

// Index is container[idx] over a tuple/list term.
type Index struct{ X, I Term }

// Select is map lookup M[k].
type Select struct{ M, K Term }

// Store is the map M with k set to v (functional update).
type Store struct{ M, K, V Term }

// Del is the map M with k removed.
type Del struct{ M, K Term }

// In is the membership test k in M (a boolean-valued term).
type In struct{ K, M Term }

func (Const) isTerm()      {}
func (Var) isTerm()        {}
func (NamedConst) isTerm() {}
func (MapVar) isTerm()     {}
func (Bin) isTerm()        {}
func (Un) isTerm()         {}
func (Call) isTerm()       {}
func (Tuple) isTerm()      {}
func (Index) isTerm()      {}
func (Select) isTerm()     {}
func (Store) isTerm()      {}
func (Del) isTerm()        {}
func (In) isTerm()         {}

// Key implementations — injective structural encodings.

func (t Const) Key() string {
	if k, err := t.V.Key(); err == nil {
		return "c:" + k
	}
	return "c:" + t.V.String()
}
func (t Var) Key() string        { return "v:" + t.Name }
func (t NamedConst) Key() string { return "nc:" + t.Name }
func (t MapVar) Key() string     { return "m:" + t.Name }
func (t Bin) Key() string        { return "b:" + t.Op + "(" + t.X.Key() + "," + t.Y.Key() + ")" }
func (t Un) Key() string         { return "u:" + t.Op + "(" + t.X.Key() + ")" }
func (t Call) Key() string {
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.Key()
	}
	return "f:" + t.Fn + "(" + strings.Join(parts, ",") + ")"
}
func (t Tuple) Key() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		parts[i] = e.Key()
	}
	return "t:(" + strings.Join(parts, ",") + ")"
}
func (t Index) Key() string  { return "i:(" + t.X.Key() + ")[" + t.I.Key() + "]" }
func (t Select) Key() string { return "sel:(" + t.M.Key() + ")[" + t.K.Key() + "]" }
func (t Store) Key() string {
	return "sto:(" + t.M.Key() + ")[" + t.K.Key() + ":=" + t.V.Key() + "]"
}
func (t Del) Key() string { return "del:(" + t.M.Key() + ")[" + t.K.Key() + "]" }
func (t In) Key() string  { return "in:(" + t.K.Key() + ")in(" + t.M.Key() + ")" }

// String implementations — readable rendering.

func (t Const) String() string      { return t.V.String() }
func (t Var) String() string        { return t.Name }
func (t NamedConst) String() string { return t.Name }
func (t MapVar) String() string     { return t.Name }
func (t Bin) String() string {
	return "(" + t.X.String() + " " + t.Op + " " + t.Y.String() + ")"
}
func (t Un) String() string { return t.Op + t.X.String() }
func (t Call) String() string {
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return t.Fn + "(" + strings.Join(parts, ", ") + ")"
}
func (t Tuple) String() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
func (t Index) String() string  { return t.X.String() + "[" + t.I.String() + "]" }
func (t Select) String() string { return t.M.String() + "[" + t.K.String() + "]" }
func (t Store) String() string {
	return t.M.String() + "{" + t.K.String() + " := " + t.V.String() + "}"
}
func (t Del) String() string { return t.M.String() + "{del " + t.K.String() + "}" }
func (t In) String() string  { return t.K.String() + " in " + t.M.String() }

// CTrue and CFalse are the boolean constants.
var (
	CTrue  = Const{V: value.Bool(true)}
	CFalse = Const{V: value.Bool(false)}
)

// IsConstBool reports whether t is the constant true/false.
func IsConstBool(t Term) (b, ok bool) {
	c, isC := t.(Const)
	if !isC || c.V.Kind != value.KindBool {
		return false, false
	}
	return c.V.B, true
}

// Not returns the logical negation of t, simplified one level.
func Not(t Term) Term {
	if b, ok := IsConstBool(t); ok {
		return Const{V: value.Bool(!b)}
	}
	if u, ok := t.(Un); ok && u.Op == "!" {
		return u.X
	}
	if b, ok := t.(Bin); ok {
		if neg, ok := negCmp[b.Op]; ok {
			return Bin{Op: neg, X: b.X, Y: b.Y}
		}
	}
	return Un{Op: "!", X: t}
}

var negCmp = map[string]string{
	"==": "!=", "!=": "==",
	"<": ">=", ">=": "<",
	">": "<=", "<=": ">",
}

// Vars returns the names of all Var leaves of t, sorted.
func Vars(t Term) []string {
	set := map[string]bool{}
	var walk func(Term)
	walk = func(t Term) {
		switch x := t.(type) {
		case Var:
			set[x.Name] = true
		case MapVar:
			set[x.Name] = true
		case Bin:
			walk(x.X)
			walk(x.Y)
		case Un:
			walk(x.X)
		case Call:
			for _, a := range x.Args {
				walk(a)
			}
		case Tuple:
			for _, e := range x.Elems {
				walk(e)
			}
		case Index:
			walk(x.X)
			walk(x.I)
		case Select:
			walk(x.M)
			walk(x.K)
		case Store:
			walk(x.M)
			walk(x.K)
			walk(x.V)
		case Del:
			walk(x.M)
			walk(x.K)
		case In:
			walk(x.K)
			walk(x.M)
		}
	}
	walk(t)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Rename returns t with every Var/MapVar renamed through f.
func Rename(t Term, f func(string) string) Term {
	switch x := t.(type) {
	case Var:
		return Var{Name: f(x.Name)}
	case NamedConst:
		return NamedConst{Name: f(x.Name), V: x.V}
	case MapVar:
		return MapVar{Name: f(x.Name)}
	case Bin:
		return Bin{Op: x.Op, X: Rename(x.X, f), Y: Rename(x.Y, f)}
	case Un:
		return Un{Op: x.Op, X: Rename(x.X, f)}
	case Call:
		args := make([]Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = Rename(a, f)
		}
		return Call{Fn: x.Fn, Args: args}
	case Tuple:
		elems := make([]Term, len(x.Elems))
		for i, e := range x.Elems {
			elems[i] = Rename(e, f)
		}
		return Tuple{Elems: elems}
	case Index:
		return Index{X: Rename(x.X, f), I: Rename(x.I, f)}
	case Select:
		return Select{M: Rename(x.M, f), K: Rename(x.K, f)}
	case Store:
		return Store{M: Rename(x.M, f), K: Rename(x.K, f), V: Rename(x.V, f)}
	case Del:
		return Del{M: Rename(x.M, f), K: Rename(x.K, f)}
	case In:
		return In{K: Rename(x.K, f), M: Rename(x.M, f)}
	default:
		return t
	}
}

// fmt check
var _ = fmt.Sprintf
