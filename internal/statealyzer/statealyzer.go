// Package statealyzer computes the variable features defined by
// StateAlyzer (Khalid et al., NSDI'16 — the paper's reference [16]) and
// the finer-grained NFactor categorization of Table 1:
//
//	pktVar — packet I/O function parameter/return value
//	cfgVar — persistent, top-level, not updateable
//	oisVar — persistent, top-level, updateable, output-impacting
//	logVar — persistent, top-level, updateable, not output-impacting
//
// Unlike the original StateAlyzer, NFactor runs the classification on the
// packet-processing slice rather than on the whole program (§3.1), which
// is how output-impacting is decided here: a variable is output-impacting
// when it appears in the backward slice of the packet output statements.
package statealyzer

import (
	"sort"

	"nfactor/internal/lang"
	"nfactor/internal/slice"
)

// Category is the NFactor variable category.
type Category int

// Categories of Table 1 (plus Local for non-persistent temporaries).
const (
	CatLocal Category = iota
	CatPkt
	CatCfg
	CatOIS
	CatLog
)

// String returns the paper's name for the category.
func (c Category) String() string {
	switch c {
	case CatPkt:
		return "pktVar"
	case CatCfg:
		return "cfgVar"
	case CatOIS:
		return "oisVar"
	case CatLog:
		return "logVar"
	default:
		return "local"
	}
}

// Features are the StateAlyzer variable features (§2.1).
type Features struct {
	Persistent      bool // lifetime longer than the packet processing loop
	TopLevel        bool // actually used during packet processing
	Updateable      bool // assigned during packet processing
	OutputImpacting bool // appears in the packet-output backward slice
}

// Result is the classification of every variable in the program.
type Result struct {
	Features map[string]Features
	Category map[string]Category
}

// Promote upgrades a variable to the output-impacting category. The
// NFactor pipeline calls this while closing the oisVar set transitively:
// a log-classified variable whose value flows into an oisVar update in a
// LATER invocation (e.g. a strike counter feeding a quarantine set) is
// output-impacting too, even though it never appears in a single
// invocation's packet slice.
func (r *Result) Promote(v string) {
	if f, ok := r.Features[v]; ok && r.Category[v] == CatLog {
		f.OutputImpacting = true
		r.Features[v] = f
		r.Category[v] = CatOIS
	}
}

// Vars returns the variables of category c, sorted.
func (r *Result) Vars(c Category) []string {
	var out []string
	for v, cat := range r.Category {
		if cat == c {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// PktVars returns the packet variables.
func (r *Result) PktVars() []string { return r.Vars(CatPkt) }

// CfgVars returns the configuration variables.
func (r *Result) CfgVars() []string { return r.Vars(CatCfg) }

// OISVars returns the output-impacting state variables.
func (r *Result) OISVars() []string { return r.Vars(CatOIS) }

// LogVars returns the non-output-impacting (log) state variables.
func (r *Result) LogVars() []string { return r.Vars(CatLog) }

// Analyze classifies every variable of the analyzer's program. pktSlice is
// the packet-processing slice (AST statement IDs) previously computed by
// Algorithm 1 lines 1-4.
func Analyze(a *slice.Analyzer, pktSlice map[int]bool) *Result {
	prog := a.Prog
	fn := prog.Func(a.Entry)

	persistent := map[string]bool{}
	for _, g := range prog.Globals {
		for _, l := range g.LHS {
			persistent[l.(*lang.Ident).Name] = true
		}
	}

	topLevel := map[string]bool{}
	updateable := map[string]bool{}
	var walkBody func(s lang.Stmt)
	walkBody = func(s lang.Stmt) {
		for _, v := range lang.Uses(s) {
			topLevel[v] = true
		}
		for _, v := range lang.Defs(s) {
			topLevel[v] = true
			updateable[v] = true
		}
		switch st := s.(type) {
		case *lang.BlockStmt:
			for _, c := range st.Stmts {
				walkBody(c)
			}
		case *lang.IfStmt:
			walkBody(st.Then)
			if st.Else != nil {
				walkBody(st.Else)
			}
		case *lang.WhileStmt:
			walkBody(st.Body)
		case *lang.ForStmt:
			walkBody(st.Body)
		}
	}
	walkBody(fn.Body)

	outputImpacting := map[string]bool{}
	prog.WalkStmts(func(s lang.Stmt) {
		if !pktSlice[s.StmtID()] {
			return
		}
		for _, v := range lang.Uses(s) {
			outputImpacting[v] = true
		}
		for _, v := range lang.Defs(s) {
			outputImpacting[v] = true
		}
	})

	res := &Result{
		Features: map[string]Features{},
		Category: map[string]Category{},
	}
	allVars := map[string]bool{}
	for v := range persistent {
		allVars[v] = true
	}
	for v := range topLevel {
		allVars[v] = true
	}
	for _, p := range fn.Params {
		allVars[p] = true
	}

	params := map[string]bool{}
	for _, p := range fn.Params {
		params[p] = true
	}

	for v := range allVars {
		f := Features{
			Persistent:      persistent[v],
			TopLevel:        topLevel[v],
			Updateable:      updateable[v],
			OutputImpacting: outputImpacting[v],
		}
		res.Features[v] = f
		switch {
		case params[v]:
			res.Category[v] = CatPkt
		case f.Persistent && f.TopLevel && !f.Updateable:
			res.Category[v] = CatCfg
		case f.Persistent && f.TopLevel && f.Updateable && f.OutputImpacting:
			res.Category[v] = CatOIS
		case f.Persistent && f.TopLevel && f.Updateable:
			res.Category[v] = CatLog
		default:
			res.Category[v] = CatLocal
		}
	}
	return res
}
