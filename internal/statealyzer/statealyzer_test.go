package statealyzer

import (
	"reflect"
	"testing"

	"nfactor/internal/lang"
	"nfactor/internal/slice"
)

// lbSrc is the paper's Figure 1 load balancer; Table 1 gives its expected
// categorization.
const lbSrc = `
mode = "RR";
LB_IP = "3.3.3.3";
LB_PORT = 80;
servers = [("1.1.1.1", 80), ("2.2.2.2", 80)];
f2b_nat = {};
b2f_nat = {};
rr_idx = 0;
cur_port = 10000;
pass_stat = 0;
drop_stat = 0;

func process(pkt) {
    si, di = pkt.sip, pkt.dip;
    sp, dp = pkt.sport, pkt.dport;
    if dp == LB_PORT {
        cs_ftpl = (si, sp, di, dp);
        sc_ftpl = (di, dp, si, sp);
        if !(cs_ftpl in f2b_nat) {
            if mode == "RR" {
                server = servers[rr_idx];
                rr_idx = (rr_idx + 1) % len(servers);
            } else {
                server = servers[hash(si) % len(servers)];
            }
            n_port = cur_port;
            cur_port = cur_port + 1;
            cs_btpl = (LB_IP, n_port, server[0], server[1]);
            sc_btpl = (server[0], server[1], LB_IP, n_port);
            f2b_nat[cs_ftpl] = cs_btpl;
            b2f_nat[sc_btpl] = sc_ftpl;
            nat_tpl = cs_btpl;
        } else {
            nat_tpl = f2b_nat[cs_ftpl];
        }
    } else {
        sc_btpl = (si, sp, di, dp);
        if sc_btpl in b2f_nat {
            nat_tpl = b2f_nat[sc_btpl];
        } else {
            drop_stat = drop_stat + 1;
            return;
        }
    }
    pass_stat = pass_stat + 1;
    pkt.sip = nat_tpl[0];
    pkt.sport = nat_tpl[1];
    pkt.dip = nat_tpl[2];
    pkt.dport = nat_tpl[3];
    send(pkt);
}
`

func analyzeLB(t *testing.T) *Result {
	t.Helper()
	a, err := slice.NewAnalyzer(lang.MustParse(lbSrc), "process")
	if err != nil {
		t.Fatal(err)
	}
	var sends []int
	a.Prog.WalkStmts(func(s lang.Stmt) {
		if es, ok := s.(*lang.ExprStmt); ok {
			if c, ok := es.X.(*lang.CallExpr); ok && c.Fun == "send" {
				sends = append(sends, s.StmtID())
			}
		}
	})
	pktSlice, err := a.Backward(sends)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(a, pktSlice)
}

func TestTable1Categorization(t *testing.T) {
	res := analyzeLB(t)
	if got := res.PktVars(); !reflect.DeepEqual(got, []string{"pkt"}) {
		t.Errorf("pktVars = %v, want [pkt]", got)
	}
	wantCfg := []string{"LB_IP", "LB_PORT", "mode", "servers"}
	if got := res.CfgVars(); !reflect.DeepEqual(got, wantCfg) {
		t.Errorf("cfgVars = %v, want %v", got, wantCfg)
	}
	wantOIS := []string{"b2f_nat", "cur_port", "f2b_nat", "rr_idx"}
	if got := res.OISVars(); !reflect.DeepEqual(got, wantOIS) {
		t.Errorf("oisVars = %v, want %v", got, wantOIS)
	}
	wantLog := []string{"drop_stat", "pass_stat"}
	if got := res.LogVars(); !reflect.DeepEqual(got, wantLog) {
		t.Errorf("logVars = %v, want %v", got, wantLog)
	}
}

func TestFeatures(t *testing.T) {
	res := analyzeLB(t)
	f := res.Features["rr_idx"]
	if !f.Persistent || !f.TopLevel || !f.Updateable || !f.OutputImpacting {
		t.Errorf("rr_idx features = %+v, want all true", f)
	}
	f = res.Features["pass_stat"]
	if !f.Persistent || !f.TopLevel || !f.Updateable || f.OutputImpacting {
		t.Errorf("pass_stat features = %+v, want output-impacting false", f)
	}
	f = res.Features["mode"]
	if !f.Persistent || !f.TopLevel || f.Updateable {
		t.Errorf("mode features = %+v, want not updateable", f)
	}
	f = res.Features["si"]
	if f.Persistent {
		t.Errorf("local si marked persistent: %+v", f)
	}
	if res.Category["si"] != CatLocal {
		t.Errorf("si category = %v, want local", res.Category["si"])
	}
}

func TestCategoryString(t *testing.T) {
	cases := map[Category]string{
		CatPkt: "pktVar", CatCfg: "cfgVar", CatOIS: "oisVar",
		CatLog: "logVar", CatLocal: "local",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestUnusedGlobalNotTopLevel(t *testing.T) {
	a, err := slice.NewAnalyzer(lang.MustParse(`
used = 1;
unused = 2;
func process(pkt) {
    pkt.ttl = used;
    send(pkt);
}`), "process")
	if err != nil {
		t.Fatal(err)
	}
	var sends []int
	a.Prog.WalkStmts(func(s lang.Stmt) {
		if es, ok := s.(*lang.ExprStmt); ok {
			if c, ok := es.X.(*lang.CallExpr); ok && c.Fun == "send" {
				sends = append(sends, s.StmtID())
			}
		}
	})
	pktSlice, err := a.Backward(sends)
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze(a, pktSlice)
	if res.Features["unused"].TopLevel {
		t.Error("unused global marked top-level")
	}
	if res.Category["used"] != CatCfg {
		t.Errorf("used category = %v, want cfgVar", res.Category["used"])
	}
}
