package symexec

import "nfactor/internal/solver"

// alternatives enumerates the disjoint literal sets under which the
// boolean term c evaluates to want. This is how compound conditions
// (&&, ||, !) are decomposed into primitive branch literals, mirroring
// how a compiler would have lowered them to nested branches before KLEE
// saw them.
//
//	alternatives(a && b, true)  = {a,b}
//	alternatives(a && b, false) = {¬a} ∪ {a,¬b}
//	alternatives(a || b, true)  = {a} ∪ {¬a,b}
//	alternatives(a || b, false) = {¬a,¬b}
//
// The union of returned sets is exhaustive and pairwise disjoint, so path
// counting is not inflated by overlapping forks.
func alternatives(c solver.Term, want bool) [][]solver.Term {
	c = solver.Simplify(c)
	if b, ok := solver.IsConstBool(c); ok {
		if b == want {
			return [][]solver.Term{{}}
		}
		return nil
	}
	switch x := c.(type) {
	case solver.Un:
		if x.Op == "!" {
			return alternatives(x.X, !want)
		}
	case solver.Bin:
		switch x.Op {
		case "&&":
			if want {
				return cross(alternatives(x.X, true), alternatives(x.Y, true))
			}
			out := alternatives(x.X, false)
			out = append(out, cross(alternatives(x.X, true), alternatives(x.Y, false))...)
			return out
		case "||":
			if want {
				out := alternatives(x.X, true)
				out = append(out, cross(alternatives(x.X, false), alternatives(x.Y, true))...)
				return out
			}
			return cross(alternatives(x.X, false), alternatives(x.Y, false))
		}
	}
	// Primitive literal.
	if want {
		return [][]solver.Term{{c}}
	}
	return [][]solver.Term{{solver.Not(c)}}
}

func cross(a, b [][]solver.Term) [][]solver.Term {
	var out [][]solver.Term
	for _, x := range a {
		for _, y := range b {
			merged := make([]solver.Term, 0, len(x)+len(y))
			merged = append(merged, x...)
			merged = append(merged, y...)
			out = append(out, merged)
		}
	}
	return out
}
