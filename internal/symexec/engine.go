package symexec

import (
	"fmt"
	"sort"

	"nfactor/internal/interp"
	"nfactor/internal/lang"
	"nfactor/internal/perf"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// Run symbolically executes prog's entry function over one symbolic
// packet. The program must have user calls inlined (slice.NewAnalyzer and
// core.Pipeline do this); encountering a user-function call is an error.
//
// Exploration runs on Options.Workers goroutines sharing one frontier;
// the result is deterministic regardless of worker count (paths are
// merged in fork-decision order), except for WHICH paths survive when a
// budget is exhausted mid-run.
func Run(prog *lang.Program, entry string, opts Options) (*Result, error) {
	o := opts.withDefaults()
	fn := prog.Func(entry)
	if fn == nil {
		return nil, fmt.Errorf("symexec: no function %q", entry)
	}
	if len(fn.Params) != 1 {
		return nil, fmt.Errorf("symexec: %s must take exactly one packet parameter", entry)
	}

	// Concretely evaluate the global initializers (the prelude runs before
	// any packet arrives, so it is deterministic), then symbolize the
	// configured subset.
	ci, err := interp.New(prog, entry, interp.Options{ConfigOverride: o.ConfigOverride})
	if err != nil {
		return nil, fmt.Errorf("symexec: %w", err)
	}
	initGlobals := map[string]solver.Term{}
	for name, v := range ci.Globals() {
		var t solver.Term = solver.Const{V: v}
		switch {
		case o.StateVars[name]:
			if v.Kind == value.KindMap {
				t = solver.MapVar{Name: name + "@0"}
			} else {
				t = solver.Var{Name: name + "@0"}
			}
		case o.ConfigVars[name] && isScalar(v) && o.ConfigOverride[name].Kind == value.KindNil:
			t = solver.Var{Name: name}
		case o.ConfigVars[name] && !isScalar(v):
			// Composite configuration (backend lists, rule tables) keeps
			// its name in the model but folds where a concrete value is
			// required.
			t = solver.NamedConst{Name: name, V: v}
		}
		initGlobals[name] = t
	}

	e := &engine{
		prog:        prog,
		entry:       entry,
		opts:        o,
		initGlobals: initGlobals,
		cStates:     o.Perf.Counter(perf.CStates),
		cForks:      o.Perf.Counter(perf.CForks),
		cPaths:      o.Perf.Counter(perf.CPaths),
		cPruned:     o.Perf.Counter(perf.CPruned),
		cSteps:      o.Perf.Counter(perf.CSteps),
		cSolver:     o.Perf.Counter(perf.CSolverCalls),
		cFrontier:   o.Perf.Counter(perf.CFrontier),
	}

	st := &mstate{
		locals:  map[string]solver.Term{},
		globals: map[string]solver.Term{},
		pkts:    []map[string]solver.Term{{}},
		visited: map[int]bool{},
	}
	for k, v := range initGlobals {
		st.globals[k] = v
	}
	st.locals[fn.Params[0]] = pktRefTerm(0)
	st.frames = []frame{{kind: frameBlock, stmts: fn.Body.Stmts}}
	st.curSpan = o.TraceParent

	return newExplorer(e).explore(st)
}

func isScalar(v value.Value) bool {
	switch v.Kind {
	case value.KindInt, value.KindStr, value.KindBool:
		return true
	default:
		return false
	}
}

type engine struct {
	prog        *lang.Program
	entry       string
	opts        Options
	initGlobals map[string]solver.Term

	// Hot-path perf counters (nil when Options.Perf is unset; all
	// perf.Counter methods are nil-safe). cFrontier is a gauge: +forks
	// on push, -1 on pop.
	cStates, cForks, cPaths, cPruned, cSteps, cSolver, cFrontier *perf.Counter
}

// satConj is the engine's feasibility check: memoized through the shared
// cache when one is configured.
func (e *engine) satConj(lits []solver.Term) bool {
	e.cSolver.Inc()
	if e.opts.Cache != nil {
		return e.opts.Cache.SatConj(lits)
	}
	return solver.SatConj(lits)
}

// simplify routes term simplification through the shared cache.
func (e *engine) simplify(t solver.Term) solver.Term {
	if e.opts.Cache != nil {
		return e.opts.Cache.Simplify(t)
	}
	return solver.Simplify(t)
}

// runToEvent advances st until the path completes (completed=true, caller
// records it), the state forks (non-empty forks), or the state dies
// (empty non-nil forks: every branch alternative was infeasible, or the
// run was cancelled mid-path).
func (e *engine) runToEvent(st *mstate, ex *explorer) (forks []*mstate, completed bool, err error) {
	steps0 := st.steps
	defer func() { e.cSteps.Add(int64(st.steps - steps0)) }()
	for {
		if len(st.frames) == 0 {
			return nil, true, nil
		}
		st.steps++
		if st.steps > e.opts.MaxSteps {
			st.truncated = true
			return nil, true, nil
		}
		if st.steps&127 == 0 && ex.shouldStop() {
			// Cancelled (error elsewhere, or global time budget hit):
			// abandon the in-flight state.
			return []*mstate{}, false, nil
		}
		top := &st.frames[len(st.frames)-1]
		if top.idx >= len(top.stmts) {
			forks, done, err := e.frameEnd(st)
			if err != nil {
				return nil, false, err
			}
			if done {
				return nil, true, nil
			}
			if forks != nil {
				return forks, false, nil
			}
			continue
		}
		s := top.stmts[top.idx]
		top.idx++
		st.visited[s.StmtID()] = true
		forks, done, err := e.execStmt(st, s)
		if err != nil {
			return nil, false, fmt.Errorf("symexec: %s: %w", s.NodePos(), err)
		}
		if done {
			return nil, true, nil
		}
		if forks != nil {
			return forks, false, nil
		}
	}
}

// frameEnd handles falling off the end of the top frame: loop frames
// re-evaluate their condition / advance their element.
func (e *engine) frameEnd(st *mstate) (forks []*mstate, done bool, err error) {
	top := &st.frames[len(st.frames)-1]
	switch top.kind {
	case frameBlock:
		st.frames = st.frames[:len(st.frames)-1]
		return nil, false, nil
	case frameWhile:
		if top.iter >= e.opts.LoopBound {
			// Bounded-loop cutoff (§3.2): force exit, mark truncated.
			st.truncated = true
			st.frames = st.frames[:len(st.frames)-1]
			return nil, false, nil
		}
		loop := top.loop
		forks, err := e.branch(st, loop.Cond, loop.StmtID(),
			func(child *mstate) { // condition true: next iteration
				f := &child.frames[len(child.frames)-1]
				f.idx = 0
				f.iter++
			},
			func(child *mstate) { // condition false: exit loop
				child.frames = child.frames[:len(child.frames)-1]
			})
		return forks, false, err
	case frameFor:
		top.elemIdx++
		if top.elemIdx >= len(top.elems) {
			st.frames = st.frames[:len(st.frames)-1]
			return nil, false, nil
		}
		e.bind(st, top.forStmt.Var, top.elems[top.elemIdx])
		top.idx = 0
		return nil, false, nil
	}
	return nil, false, fmt.Errorf("symexec: unknown frame kind")
}

// branch forks st on cond. onTrue/onFalse adjust each child after the
// literal set is appended (push the then-block, pop the loop, …). The
// returned slice is always non-nil; an empty slice means every
// alternative was pruned as infeasible and the state dies. Each child is
// tagged with its fork-decision index so paths can be merged in
// deterministic order regardless of which worker explores them.
func (e *engine) branch(st *mstate, cond lang.Expr, stmtID int, onTrue, onFalse func(*mstate)) ([]*mstate, error) {
	c, err := e.eval(cond, st)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cond.NodePos(), err)
	}
	children := []*mstate{}
	addAlts := func(alts [][]solver.Term, hook func(*mstate)) {
		for _, alt := range alts {
			child := st.clone()
			feasible := true
			if len(alt) > 0 {
				child.conds = append(child.conds, alt...)
				for range alt {
					child.condStmts = append(child.condStmts, stmtID)
				}
				if !e.opts.NoPruning {
					st.evSolver++
					feasible = e.satConj(child.conds)
				}
			}
			if feasible {
				child.seq = append(child.seq, int32(len(children)))
				hook(child)
				children = append(children, child)
			} else {
				st.evPruned++
				e.cPruned.Inc()
			}
		}
	}
	addAlts(alternatives(c, true), onTrue)
	addAlts(alternatives(c, false), onFalse)
	if len(children) > 1 {
		e.cForks.Add(int64(len(children) - 1))
	}
	return children, nil
}

// execStmt executes one statement. done=true ends the path (return).
func (e *engine) execStmt(st *mstate, s lang.Stmt) (forks []*mstate, done bool, err error) {
	switch x := s.(type) {
	case *lang.AssignStmt:
		return nil, false, e.execAssign(st, x)

	case *lang.ExprStmt:
		return nil, false, e.execCallStmt(st, x)

	case *lang.IfStmt:
		forks, err := e.branch(st, x.Cond, x.StmtID(),
			func(child *mstate) {
				child.frames = append(child.frames, frame{kind: frameBlock, stmts: x.Then.Stmts})
			},
			func(child *mstate) {
				if x.Else != nil {
					child.frames = append(child.frames, frame{kind: frameBlock, stmts: x.Else.Stmts})
				}
			})
		return forks, false, err

	case *lang.WhileStmt:
		forks, err := e.branch(st, x.Cond, x.StmtID(),
			func(child *mstate) {
				child.frames = append(child.frames, frame{kind: frameWhile, stmts: x.Body.Stmts, loop: x, iter: 1})
			},
			func(*mstate) {})
		return forks, false, err

	case *lang.ForStmt:
		iter, err := e.eval(x.Iter, st)
		if err != nil {
			return nil, false, err
		}
		elems, err := iterTerms(iter)
		if err != nil {
			return nil, false, fmt.Errorf("%s: %w", x.NodePos(), err)
		}
		if len(elems) == 0 {
			return nil, false, nil
		}
		e.bind(st, x.Var, elems[0])
		st.frames = append(st.frames, frame{kind: frameFor, stmts: x.Body.Stmts, forStmt: x, elems: elems})
		return nil, false, nil

	case *lang.ReturnStmt:
		return nil, true, nil

	case *lang.BreakStmt:
		for len(st.frames) > 0 {
			k := st.frames[len(st.frames)-1].kind
			st.frames = st.frames[:len(st.frames)-1]
			if k == frameWhile || k == frameFor {
				return nil, false, nil
			}
		}
		return nil, false, fmt.Errorf("break outside loop")

	case *lang.ContinueStmt:
		for len(st.frames) > 0 {
			top := &st.frames[len(st.frames)-1]
			if top.kind == frameWhile || top.kind == frameFor {
				top.idx = len(top.stmts) // trigger frameEnd on next step
				return nil, false, nil
			}
			st.frames = st.frames[:len(st.frames)-1]
		}
		return nil, false, fmt.Errorf("continue outside loop")

	case *lang.BlockStmt:
		st.frames = append(st.frames, frame{kind: frameBlock, stmts: x.Stmts})
		return nil, false, nil

	default:
		return nil, false, fmt.Errorf("unsupported statement %T", s)
	}
}

func iterTerms(t solver.Term) ([]solver.Term, error) {
	if nc, ok := t.(solver.NamedConst); ok {
		t = solver.Const{V: nc.V}
	}
	switch x := t.(type) {
	case solver.Tuple:
		return x.Elems, nil
	case solver.Const:
		switch x.V.Kind {
		case value.KindList:
			out := make([]solver.Term, len(x.V.List.Elems))
			for i, el := range x.V.List.Elems {
				out[i] = solver.Const{V: el}
			}
			return out, nil
		case value.KindTuple:
			out := make([]solver.Term, len(x.V.Tuple))
			for i, el := range x.V.Tuple {
				out[i] = solver.Const{V: el}
			}
			return out, nil
		case value.KindMap:
			keys := x.V.Map.Keys()
			out := make([]solver.Term, len(keys))
			for i, k := range keys {
				out[i] = solver.Const{V: k}
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("cannot iterate symbolic %s (bounded-loop restriction §3.2)", t)
}

// buildPath finalizes st as a completed path record.
func (e *engine) buildPath(st *mstate) *Path {
	p := &Path{
		Conds:     append([]solver.Term{}, st.conds...),
		CondStmts: append([]int{}, st.condStmts...),
		Sends:     st.sends,
		Visited:   len(st.visited),
		Seq:       append([]int32{}, st.seq...),
		Truncated: st.truncated,
	}
	p.VisitedIDs = make([]int, 0, len(st.visited))
	for id := range st.visited {
		p.VisitedIDs = append(p.VisitedIDs, id)
	}
	sort.Ints(p.VisitedIDs)
	names := make([]string, 0, len(st.globals))
	for name := range st.globals {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		cur := st.globals[name]
		if cur.Key() != e.initGlobals[name].Key() {
			p.Updates = append(p.Updates, Update{Name: name, Val: e.simplify(cur)})
		}
	}
	return p
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
