package symexec

import (
	"strings"
	"testing"

	"nfactor/internal/lang"
)

// Error and edge-path coverage of the symbolic evaluator.

func runErr(t *testing.T, src string, opts Options) error {
	t.Helper()
	_, err := Run(lang.MustParse(src), "process", opts)
	return err
}

func TestEvalErrorCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"symbolic list literal", `func process(pkt) { l = [pkt.sport]; send(pkt); }`},
		{"symbolic map literal", `func process(pkt) { m = {pkt.sport: 1}; send(pkt); }`},
		{"field on non-packet", `func process(pkt) { x = 1; y = x.field; }`},
		{"packet index non-const", `func process(pkt) { f = pkt[pkt.sip]; }`},
		{"hash arity", `func process(pkt) { x = hash(); }`},
		{"len arity", `func process(pkt) { x = len(1, 2); }`},
		{"tcp_flag arity", `func process(pkt) { x = tcp_flag(pkt); }`},
		{"tcp_flag non-packet", `func process(pkt) { x = tcp_flag(1, "S"); }`},
		{"str_contains arity", `func process(pkt) { x = str_contains("a"); }`},
		{"keys symbolic", `m = {}; func process(pkt) { m[pkt.sport] = 1; k = keys(m); }`},
		{"unknown expr fn", `func process(pkt) { x = mystery(1); }`},
		{"send non-packet", `func process(pkt) { send(42); }`},
		{"send arity", `func process(pkt) { send(pkt, "a", "b"); }`},
		{"del arity", `m = {}; func process(pkt) { del(m); }`},
		{"del non-var", `m = {}; func process(pkt) { del(keys(m), 1); }`},
		{"del non-map", `x = 1; func process(pkt) { del(x, 1); }`},
		{"unpack arity", `func process(pkt) { a, b = (1, 2, 3); }`},
		{"store into scalar", `x = 1; func process(pkt) { x[0] = 2; send(pkt); }`},
		{"packet field write non-const idx", `func process(pkt) { pkt[pkt.sip] = 1; }`},
	}
	for _, c := range cases {
		opts := Options{StateVars: map[string]bool{"m": true}}
		if err := runErr(t, c.src, opts); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestKeysOfConcreteMapWorks(t *testing.T) {
	res, err := Run(lang.MustParse(`
cfg = {1: "a", 2: "b"};
func process(pkt) {
    ks = keys(cfg);
    pkt.n = len(ks);
    send(pkt);
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Paths[0].Sends[0].Fields["n"].String(); got != "2" {
		t.Errorf("n = %s", got)
	}
}

func TestPacketConstStringIndex(t *testing.T) {
	// pkt["sport"] is equivalent to pkt.sport.
	res, err := Run(lang.MustParse(`
func process(pkt) {
    pkt["mark"] = pkt["sport"];
    send(pkt);
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Paths[0].Sends[0].Fields["mark"].String(); got != "pkt.sport" {
		t.Errorf("mark = %s", got)
	}
}

func TestUnpackFromSymbolicMapValue(t *testing.T) {
	// Unpacking a fully symbolic tuple-valued select yields index terms.
	res, err := Run(lang.MustParse(`
m = {};
func process(pkt) {
    if pkt.sport in m {
        a, b = m[pkt.sport];
        pkt.x = a;
        pkt.y = b;
    }
    send(pkt);
}`), "process", Options{StateVars: map[string]bool{"m": true}})
	if err != nil {
		t.Fatal(err)
	}
	var hit *Path
	for _, p := range res.Paths {
		if len(p.Conds) > 0 && strings.Contains(p.Conds[0].String(), "in m@0") &&
			!strings.Contains(p.Conds[0].String(), "!") {
			hit = p
		}
	}
	if hit == nil {
		t.Fatal("no membership-hit path")
	}
	if got := hit.Sends[0].Fields["x"].String(); got != "m@0[pkt.sport][0]" {
		t.Errorf("x = %s", got)
	}
	if got := hit.Sends[0].Fields["y"].String(); got != "m@0[pkt.sport][1]" {
		t.Errorf("y = %s", got)
	}
}

func TestIterateConcreteMapKeys(t *testing.T) {
	res, err := Run(lang.MustParse(`
cfg = {3: "c", 1: "a"};
func process(pkt) {
    total = 0;
    for k in cfg {
        total = total + k;
    }
    pkt.total = total;
    send(pkt);
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Paths[0].Sends[0].Fields["total"].String(); got != "4" {
		t.Errorf("total = %s", got)
	}
}

func TestSendRecFieldNamesSorted(t *testing.T) {
	res, err := Run(lang.MustParse(`
func process(pkt) {
    pkt.b = 1;
    pkt.a = 2;
    send(pkt);
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := res.Paths[0].Sends[0].FieldNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("FieldNames = %v", names)
	}
}

func TestNegativeUnaryTerm(t *testing.T) {
	res, err := Run(lang.MustParse(`
func process(pkt) {
    pkt.neg = -pkt.ttl;
    send(pkt);
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Paths[0].Sends[0].Fields["neg"].String(); got != "-pkt.ttl" {
		t.Errorf("neg = %s", got)
	}
}
