package symexec

import (
	"fmt"

	"nfactor/internal/lang"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// eval builds the symbolic term for expression x in state st.
func (e *engine) eval(x lang.Expr, st *mstate) (solver.Term, error) {
	switch ex := x.(type) {
	case *lang.Ident:
		if t, ok := st.locals[ex.Name]; ok {
			return t, nil
		}
		if t, ok := st.globals[ex.Name]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("%s: undefined variable %q", ex.Pos, ex.Name)

	case *lang.IntLit:
		return solver.Const{V: value.Int(ex.Val)}, nil
	case *lang.StrLit:
		return solver.Const{V: value.Str(ex.Val)}, nil
	case *lang.BoolLit:
		return solver.Const{V: value.Bool(ex.Val)}, nil
	case *lang.NilLit:
		return solver.Const{V: value.Nil()}, nil

	case *lang.TupleLit:
		elems := make([]solver.Term, len(ex.Elems))
		for i, el := range ex.Elems {
			t, err := e.eval(el, st)
			if err != nil {
				return nil, err
			}
			elems[i] = t
		}
		return e.simplify(solver.Tuple{Elems: elems}), nil

	case *lang.ListLit:
		elems := make([]value.Value, len(ex.Elems))
		for i, el := range ex.Elems {
			t, err := e.eval(el, st)
			if err != nil {
				return nil, err
			}
			c, ok := t.(solver.Const)
			if !ok {
				return nil, fmt.Errorf("%s: list literal with symbolic element", ex.Pos)
			}
			elems[i] = c.V
		}
		return solver.Const{V: value.NewList(elems...)}, nil

	case *lang.MapLit:
		m := value.NewMap()
		for i := range ex.Keys {
			kt, err := e.eval(ex.Keys[i], st)
			if err != nil {
				return nil, err
			}
			vt, err := e.eval(ex.Vals[i], st)
			if err != nil {
				return nil, err
			}
			kc, kok := kt.(solver.Const)
			vc, vok := vt.(solver.Const)
			if !kok || !vok {
				return nil, fmt.Errorf("%s: map literal with symbolic entry", ex.Pos)
			}
			if err := m.Map.Set(kc.V, vc.V); err != nil {
				return nil, fmt.Errorf("%s: %w", ex.Pos, err)
			}
		}
		return solver.Const{V: m}, nil

	case *lang.UnaryExpr:
		t, err := e.eval(ex.X, st)
		if err != nil {
			return nil, err
		}
		return e.simplify(solver.Un{Op: ex.Op, X: t}), nil

	case *lang.BinaryExpr:
		l, err := e.eval(ex.X, st)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(ex.Y, st)
		if err != nil {
			return nil, err
		}
		if ex.Op == "in" {
			return e.simplify(solver.In{K: l, M: r}), nil
		}
		return e.simplify(solver.Bin{Op: ex.Op, X: l, Y: r}), nil

	case *lang.IndexExpr:
		base, err := e.eval(ex.X, st)
		if err != nil {
			return nil, err
		}
		idx, err := e.eval(ex.Index, st)
		if err != nil {
			return nil, err
		}
		if ref, ok := pktRefIndex(base); ok {
			c, ok := idx.(solver.Const)
			if !ok || c.V.Kind != value.KindStr {
				return nil, fmt.Errorf("%s: packet index must be a constant field name", ex.Pos)
			}
			return e.pktField(st, ref, c.V.S), nil
		}
		if isMapTerm(base) {
			return e.simplify(solver.Select{M: base, K: idx}), nil
		}
		return e.simplify(solver.Index{X: base, I: idx}), nil

	case *lang.FieldExpr:
		base, err := e.eval(ex.X, st)
		if err != nil {
			return nil, err
		}
		ref, ok := pktRefIndex(base)
		if !ok {
			return nil, fmt.Errorf("%s: field access on non-packet", ex.Pos)
		}
		return e.pktField(st, ref, ex.Name), nil

	case *lang.CallExpr:
		return e.evalCall(ex, st)

	default:
		return nil, fmt.Errorf("unsupported expression %T", x)
	}
}

// pktField reads a packet field, lazily introducing the symbolic input
// variable pkt.<name> for fields never written on this path.
func (e *engine) pktField(st *mstate, ref int, name string) solver.Term {
	rec := st.pkts[ref]
	if t, ok := rec[name]; ok {
		return t
	}
	t := solver.Var{Name: "pkt." + name}
	rec[name] = t
	return t
}

func isMapTerm(t solver.Term) bool {
	switch x := t.(type) {
	case solver.MapVar, solver.Store, solver.Del:
		return true
	case solver.Const:
		return x.V.Kind == value.KindMap
	case solver.NamedConst:
		return x.V.Kind == value.KindMap
	default:
		return false
	}
}

func (e *engine) evalCall(ex *lang.CallExpr, st *mstate) (solver.Term, error) {
	if e.prog.Func(ex.Fun) != nil {
		return nil, fmt.Errorf("%s: user function %q not inlined before symbolic execution", ex.Pos, ex.Fun)
	}
	switch ex.Fun {
	case "hash", "len":
		if len(ex.Args) != 1 {
			return nil, fmt.Errorf("%s: %s takes 1 argument", ex.Pos, ex.Fun)
		}
		a, err := e.eval(ex.Args[0], st)
		if err != nil {
			return nil, err
		}
		return e.simplify(solver.Call{Fn: ex.Fun, Args: []solver.Term{a}}), nil
	case "str_contains":
		if len(ex.Args) != 2 {
			return nil, fmt.Errorf("%s: str_contains takes two arguments", ex.Pos)
		}
		a, err := e.eval(ex.Args[0], st)
		if err != nil {
			return nil, err
		}
		b, err := e.eval(ex.Args[1], st)
		if err != nil {
			return nil, err
		}
		return e.simplify(solver.Call{Fn: "contains", Args: []solver.Term{a, b}}), nil
	case "tcp_flag":
		if len(ex.Args) != 2 {
			return nil, fmt.Errorf("%s: tcp_flag takes (pkt, flag)", ex.Pos)
		}
		base, err := e.eval(ex.Args[0], st)
		if err != nil {
			return nil, err
		}
		ref, ok := pktRefIndex(base)
		if !ok {
			return nil, fmt.Errorf("%s: tcp_flag on non-packet", ex.Pos)
		}
		flag, err := e.eval(ex.Args[1], st)
		if err != nil {
			return nil, err
		}
		flags := e.pktField(st, ref, "flags")
		return e.simplify(solver.Call{Fn: "contains", Args: []solver.Term{flags, flag}}), nil
	case "keys":
		if len(ex.Args) != 1 {
			return nil, fmt.Errorf("%s: keys takes a map", ex.Pos)
		}
		a, err := e.eval(ex.Args[0], st)
		if err != nil {
			return nil, err
		}
		if c, ok := a.(solver.Const); ok && c.V.Kind == value.KindMap {
			return solver.Const{V: value.NewList(c.V.Map.Keys()...)}, nil
		}
		return nil, fmt.Errorf("%s: keys() of a symbolic map is not supported", ex.Pos)
	default:
		return nil, fmt.Errorf("%s: unknown function %q in expression", ex.Pos, ex.Fun)
	}
}

// execCallStmt handles statement-position calls: send, drop, log, del.
func (e *engine) execCallStmt(st *mstate, s *lang.ExprStmt) error {
	call, ok := s.X.(*lang.CallExpr)
	if !ok {
		// A bare expression statement: evaluate for errors, no effect.
		_, err := e.eval(s.X, st)
		return err
	}
	switch call.Fun {
	case "send":
		if len(call.Args) < 1 || len(call.Args) > 2 {
			return fmt.Errorf("%s: send takes (pkt) or (pkt, iface)", call.Pos)
		}
		base, err := e.eval(call.Args[0], st)
		if err != nil {
			return err
		}
		ref, ok := pktRefIndex(base)
		if !ok {
			return fmt.Errorf("%s: send of non-packet", call.Pos)
		}
		var iface solver.Term = solver.Const{V: value.Str("")}
		if len(call.Args) == 2 {
			iface, err = e.eval(call.Args[1], st)
			if err != nil {
				return err
			}
		}
		fields := make(map[string]solver.Term, len(st.pkts[ref]))
		for k, v := range st.pkts[ref] {
			fields[k] = e.simplify(v)
		}
		st.sends = append(st.sends, SendRec{Fields: fields, Iface: iface})
		return nil

	case "drop":
		return nil

	case "log":
		for _, a := range call.Args {
			if _, err := e.eval(a, st); err != nil {
				return err
			}
		}
		return nil

	case "del":
		if len(call.Args) != 2 {
			return fmt.Errorf("%s: del takes (map, key)", call.Pos)
		}
		id, ok := call.Args[0].(*lang.Ident)
		if !ok {
			return fmt.Errorf("%s: del target must be a variable", call.Pos)
		}
		m, err := e.eval(call.Args[0], st)
		if err != nil {
			return err
		}
		if !isMapTerm(m) {
			return fmt.Errorf("%s: del on non-map", call.Pos)
		}
		k, err := e.eval(call.Args[1], st)
		if err != nil {
			return err
		}
		e.bind(st, id.Name, e.simplify(solver.Del{M: m, K: k}))
		return nil

	default:
		_, err := e.eval(s.X, st)
		return err
	}
}

// bind assigns name in the state, locals shadowing globals, mirroring the
// concrete interpreter's rules.
func (e *engine) bind(st *mstate, name string, t solver.Term) {
	if _, ok := st.locals[name]; ok {
		st.locals[name] = t
		return
	}
	if _, ok := st.globals[name]; ok {
		st.globals[name] = t
		return
	}
	st.locals[name] = t
}

func (e *engine) execAssign(st *mstate, s *lang.AssignStmt) error {
	var vals []solver.Term
	if len(s.RHS) == 1 && len(s.LHS) > 1 {
		t, err := e.eval(s.RHS[0], st)
		if err != nil {
			return err
		}
		parts, err := e.unpack(t, len(s.LHS))
		if err != nil {
			return fmt.Errorf("%s: %w", s.NodePos(), err)
		}
		vals = parts
	} else {
		for _, r := range s.RHS {
			t, err := e.eval(r, st)
			if err != nil {
				return err
			}
			vals = append(vals, t)
		}
	}
	for i, l := range s.LHS {
		if err := e.assignTo(st, l, vals[i]); err != nil {
			return fmt.Errorf("%s: %w", s.NodePos(), err)
		}
	}
	return nil
}

func (e *engine) unpack(t solver.Term, n int) ([]solver.Term, error) {
	switch x := t.(type) {
	case solver.Tuple:
		if len(x.Elems) != n {
			return nil, fmt.Errorf("cannot unpack %d-tuple into %d targets", len(x.Elems), n)
		}
		return x.Elems, nil
	case solver.Const:
		if x.V.Kind == value.KindTuple {
			if len(x.V.Tuple) != n {
				return nil, fmt.Errorf("cannot unpack %d-tuple into %d targets", len(x.V.Tuple), n)
			}
			out := make([]solver.Term, n)
			for i, el := range x.V.Tuple {
				out[i] = solver.Const{V: el}
			}
			return out, nil
		}
	}
	// Symbolic tuple-valued term: unpack via index terms.
	out := make([]solver.Term, n)
	for i := 0; i < n; i++ {
		out[i] = e.simplify(solver.Index{X: t, I: solver.Const{V: value.Int(int64(i))}})
	}
	return out, nil
}

func (e *engine) assignTo(st *mstate, l lang.Expr, v solver.Term) error {
	switch lv := l.(type) {
	case *lang.Ident:
		e.bind(st, lv.Name, v)
		return nil

	case *lang.FieldExpr:
		base, err := e.eval(lv.X, st)
		if err != nil {
			return err
		}
		ref, ok := pktRefIndex(base)
		if !ok {
			return fmt.Errorf("field assignment on non-packet")
		}
		st.pkts[ref][lv.Name] = e.simplify(v)
		return nil

	case *lang.IndexExpr:
		base, err := e.eval(lv.X, st)
		if err != nil {
			return err
		}
		idx, err := e.eval(lv.Index, st)
		if err != nil {
			return err
		}
		if ref, ok := pktRefIndex(base); ok {
			c, ok := idx.(solver.Const)
			if !ok || c.V.Kind != value.KindStr {
				return fmt.Errorf("packet index must be a constant field name")
			}
			st.pkts[ref][c.V.S] = e.simplify(v)
			return nil
		}
		if isMapTerm(base) {
			id, ok := lv.X.(*lang.Ident)
			if !ok {
				return fmt.Errorf("map store target must be a variable")
			}
			e.bind(st, id.Name, e.simplify(solver.Store{M: base, K: idx, V: v}))
			return nil
		}
		return fmt.Errorf("symbolic store into %T is not supported", base)

	default:
		return fmt.Errorf("invalid assignment target %T", l)
	}
}
