package symexec

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nfactor/internal/trace"
)

// explorer drains the frontier of machine states with Options.Workers
// goroutines. The frontier is a shared LIFO stack, so one worker walks it
// exactly like the old sequential engine (depth-first), and extra workers
// steal the sibling branches it leaves behind.
//
// Determinism: every state carries the sequence of fork-decision indices
// that produced it (mstate.seq). Completed paths are merged by sorting on
// that sequence, which is exactly the depth-first preorder a single
// worker produces — so Result.Paths is byte-for-byte identical at every
// worker count. The only exception is a run that exhausts a budget: which
// paths got recorded before the budget filled then depends on timing
// (Exhausted is set either way).
//
// Budgets are global, not per worker: MaxPaths is an atomic reservation
// counter shared by all workers, and TimeBudget is a shared deadline that
// cancels every in-flight state.
type explorer struct {
	e *engine

	mu       sync.Mutex
	cond     *sync.Cond
	frontier []*mstate
	active   int  // workers currently advancing a state
	stopped  bool // error or time budget: stop issuing work
	err      error

	recorded  atomic.Int64 // path slots reserved (may exceed MaxPaths by the rejected ones)
	exhausted atomic.Bool
	stop      atomic.Bool // lock-free mirror of stopped for the step loop

	deadline time.Time // zero when no time budget
	paths    []recPath
}

// recPath pairs a completed path with the fork-decision sequence that
// orders it.
type recPath struct {
	seq []int32
	p   *Path
}

func newExplorer(e *engine) *explorer {
	ex := &explorer{e: e}
	ex.cond = sync.NewCond(&ex.mu)
	if e.opts.TimeBudget > 0 {
		ex.deadline = time.Now().Add(e.opts.TimeBudget)
	}
	return ex
}

func (ex *explorer) explore(root *mstate) (*Result, error) {
	ex.frontier = append(ex.frontier, root)
	ex.e.cFrontier.Inc()
	workers := ex.e.opts.Workers
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			ex.work(worker)
		}(i)
	}
	wg.Wait()

	if ex.err != nil {
		return nil, ex.err
	}
	// A drained exploration always leaves the frontier empty; anything
	// left was abandoned by a budget or cancellation.
	if len(ex.frontier) > 0 {
		ex.exhausted.Store(true)
	}
	sort.Slice(ex.paths, func(a, b int) bool { return seqLess(ex.paths[a].seq, ex.paths[b].seq) })
	res := &Result{Exhausted: ex.exhausted.Load()}
	for _, rp := range ex.paths {
		res.Paths = append(res.Paths, rp.p)
	}
	return res, nil
}

func (ex *explorer) work(worker int) {
	for {
		st, ok := ex.next()
		if !ok {
			return
		}
		ex.e.cStates.Inc()
		// One span per popped machine state — a fork subtree each. The
		// span's name is the state's PathID, which is identical at every
		// worker count, so the span TREE is scheduling-invariant even
		// though lane assignment (tid) and timing are not. Nil tracer:
		// this whole block is one pointer compare.
		var sp *trace.Span
		if tr := ex.e.opts.Trace; tr != nil {
			sp = tr.Start(trace.CatState, PathID(st.seq), st.curSpan)
			sp.SetTID(worker + 1)
			st.curSpan = sp.ID() // forks nest under this state's span
		}
		steps0 := st.steps
		forks, completed, err := ex.e.runToEvent(st, ex)
		if sp != nil {
			sp.SetInt("steps", int64(st.steps-steps0))
			if st.evSolver > 0 {
				sp.SetInt("solver_calls", int64(st.evSolver))
			}
			if st.evPruned > 0 {
				sp.SetInt("pruned", int64(st.evPruned))
			}
			st.evSolver, st.evPruned = 0, 0
			if len(forks) > 0 {
				sp.SetInt("forks", int64(len(forks)))
			}
			if completed {
				sp.SetStr("path", PathID(st.seq))
				if st.truncated {
					sp.SetInt("truncated", 1)
				}
			}
			sp.End()
		}
		if err != nil {
			ex.fail(err)
			ex.done(nil)
			return
		}
		if completed {
			ex.record(st)
		}
		ex.done(forks)
	}
}

// next pops the most recently pushed state, blocking while the frontier
// is empty but other workers may still fork. It returns false when the
// exploration is over: frontier drained, cancelled, or path budget full.
func (ex *explorer) next() (*mstate, bool) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	for {
		if ex.stopped {
			return nil, false
		}
		if ex.recorded.Load() >= int64(ex.e.opts.MaxPaths) {
			// Path budget full: stop issuing work. Anything left on the
			// frontier would have produced at least one more path;
			// explore() marks the run exhausted when it finds leftovers.
			return nil, false
		}
		if len(ex.frontier) > 0 {
			st := ex.frontier[len(ex.frontier)-1]
			ex.frontier = ex.frontier[:len(ex.frontier)-1]
			ex.e.cFrontier.Add(-1)
			ex.active++
			return st, true
		}
		if ex.active == 0 {
			return nil, false
		}
		ex.cond.Wait()
	}
}

// done returns a worker's forks to the frontier (reversed, so the first
// fork is popped first — preserving depth-first order) and wakes waiters.
func (ex *explorer) done(forks []*mstate) {
	ex.mu.Lock()
	for i := len(forks) - 1; i >= 0; i-- {
		ex.frontier = append(ex.frontier, forks[i])
	}
	ex.e.cFrontier.Add(int64(len(forks)))
	ex.active--
	ex.cond.Broadcast()
	ex.mu.Unlock()
}

// record reserves a path slot and stores the completed path. A state that
// completes after the budget filled is dropped and marks the run
// exhausted (its path would have been path MaxPaths+1 or later).
func (ex *explorer) record(st *mstate) {
	if n := ex.recorded.Add(1); n > int64(ex.e.opts.MaxPaths) {
		ex.exhausted.Store(true)
		return
	}
	ex.e.cPaths.Inc()
	p := ex.e.buildPath(st)
	ex.mu.Lock()
	ex.paths = append(ex.paths, recPath{seq: st.seq, p: p})
	ex.mu.Unlock()
}

// shouldStop is the lock-free cancellation check polled inside the step
// loop: set on error, and when the global time budget expires.
func (ex *explorer) shouldStop() bool {
	if ex.stop.Load() {
		return true
	}
	if !ex.deadline.IsZero() && time.Now().After(ex.deadline) {
		ex.exhausted.Store(true)
		ex.cancel()
		return true
	}
	return false
}

func (ex *explorer) cancel() {
	ex.stop.Store(true)
	ex.mu.Lock()
	ex.stopped = true
	ex.cond.Broadcast()
	ex.mu.Unlock()
}

func (ex *explorer) fail(err error) {
	ex.stop.Store(true)
	ex.mu.Lock()
	if ex.err == nil {
		ex.err = err
	}
	ex.stopped = true
	ex.cond.Broadcast()
	ex.mu.Unlock()
}

// seqLess orders fork-decision sequences lexicographically — the
// depth-first preorder of the execution tree.
func seqLess(a, b []int32) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
