package symexec

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"nfactor/internal/lang"
	"nfactor/internal/perf"
	"nfactor/internal/solver"
)

// fingerprint canonicalizes a path — condition keys, sends, updates — so
// runs at different worker counts can be compared element by element.
func fingerprint(p *Path) string {
	var sb strings.Builder
	for _, c := range p.Conds {
		sb.WriteString(c.Key())
		sb.WriteByte('&')
	}
	sb.WriteByte('|')
	for _, s := range p.Sends {
		sb.WriteString("send[" + s.Iface.Key() + "]")
		for _, f := range s.FieldNames() {
			sb.WriteString(f + "=" + s.Fields[f].Key() + ",")
		}
	}
	sb.WriteByte('|')
	for _, u := range p.Updates {
		sb.WriteString(u.Name + ":=" + u.Val.Key() + ";")
	}
	return sb.String()
}

func fingerprints(res *Result) []string {
	out := make([]string, len(res.Paths))
	for i, p := range res.Paths {
		out[i] = fingerprint(p)
	}
	return out
}

// TestParallelIdenticalAcrossWorkerCounts is the core determinism claim:
// the ORDERED path list of the load balancer is byte-identical at every
// worker count, because paths merge in fork-decision (depth-first
// preorder) order regardless of scheduling.
func TestParallelIdenticalAcrossWorkerCounts(t *testing.T) {
	prog := lang.MustParse(lbSrc)
	base := lbOpts
	base.Workers = 1
	ref, err := Run(prog, "process", base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Paths) == 0 {
		t.Fatal("no reference paths")
	}
	want := fingerprints(ref)
	for _, workers := range []int{2, 3, 4, 8} {
		opts := lbOpts
		opts.Workers = workers
		res, err := Run(prog, "process", opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := fingerprints(res)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d paths, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: path %d differs:\n got %s\nwant %s", workers, i, got[i], want[i])
			}
		}
	}
}

// fourPathSrc has exactly 4 feasible paths (two independent branches).
const fourPathSrc = `
func process(pkt) {
    if pkt.sport > 1024 { x = 1; } else { x = 2; }
    if pkt.dport > 1024 { y = 1; } else { y = 2; }
    pkt.ttl = x + y;
    send(pkt);
}`

// TestExactPathBudgetNotExhausted is the budget-ordering regression: a
// MaxPaths equal to the true path count must complete WITHOUT reporting
// exhaustion (the budget was sufficient), while MaxPaths one below it
// must report exhaustion — at any worker count.
func TestExactPathBudgetNotExhausted(t *testing.T) {
	prog := lang.MustParse(fourPathSrc)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			res, err := Run(prog, "process", Options{MaxPaths: 4, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Paths) != 4 {
				t.Fatalf("paths = %d, want 4", len(res.Paths))
			}
			if res.Exhausted {
				t.Error("MaxPaths == true path count reported Exhausted")
			}

			res, err = Run(prog, "process", Options{MaxPaths: 3, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Exhausted {
				t.Error("MaxPaths below the true path count did not report Exhausted")
			}
			if len(res.Paths) > 3 {
				t.Errorf("paths = %d, exceeds MaxPaths=3", len(res.Paths))
			}
			if workers == 1 && len(res.Paths) != 3 {
				t.Errorf("workers=1: paths = %d, want exactly 3", len(res.Paths))
			}
		})
	}
}

// TestTimeBudgetExpires: an already-expired time budget abandons the
// exploration (a long concrete loop guarantees the 128-step poll fires)
// and reports Exhausted — the paper's ">1hr" cells.
func TestTimeBudgetExpires(t *testing.T) {
	src := `
func process(pkt) {
    i = 0;
    while i < 500 {
        i = i + 1;
    }
    pkt.ttl = i;
    send(pkt);
}`
	res, err := Run(lang.MustParse(src), "process", Options{
		LoopBound:  2000,
		TimeBudget: time.Nanosecond,
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Error("expired time budget did not report Exhausted")
	}
	if len(res.Paths) != 0 {
		t.Errorf("paths = %d, want 0 (the only path is cut off mid-loop)", len(res.Paths))
	}
}

// TestPerfCountersAndCache: the engine reports its exploration counters,
// and a second run against the same cache answers every solver query from
// memory.
func TestPerfCountersAndCache(t *testing.T) {
	prog := lang.MustParse(lbSrc)
	set := perf.New()
	cache := solver.NewCache()
	opts := lbOpts
	opts.Workers = 2
	opts.Perf = set
	opts.Cache = cache

	res, err := Run(prog, "process", opts)
	if err != nil {
		t.Fatal(err)
	}
	if set.Get(perf.CStates) == 0 || set.Get(perf.CSteps) == 0 {
		t.Errorf("state/step counters empty: states=%d steps=%d",
			set.Get(perf.CStates), set.Get(perf.CSteps))
	}
	if got := set.Get(perf.CPaths); got != int64(len(res.Paths)) {
		t.Errorf("paths counter = %d, want %d", got, len(res.Paths))
	}
	if set.Get(perf.CForks) == 0 || set.Get(perf.CSolverCalls) == 0 {
		t.Errorf("fork/solver counters empty: forks=%d solver=%d",
			set.Get(perf.CForks), set.Get(perf.CSolverCalls))
	}
	misses := cache.Stats().SatMisses
	if misses == 0 {
		t.Fatal("first run issued no solver queries through the cache")
	}

	res2, err := Run(prog, "process", opts)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.SatMisses != misses {
		t.Errorf("second identical run missed the cache: misses %d -> %d", misses, st.SatMisses)
	}
	if st.SatHits == 0 {
		t.Error("second identical run recorded no cache hits")
	}
	for i := range res.Paths {
		if fingerprint(res.Paths[i]) != fingerprint(res2.Paths[i]) {
			t.Fatalf("cached run diverged at path %d", i)
		}
	}
}
