// Package symexec is NFactor's symbolic executor — the KLEE substitute.
//
// It executes an NFLang per-packet function with the packet's header
// fields symbolic and (optionally) the NF's configuration scalars and
// persistent state symbolic, forking at branches whose conditions do not
// fold to constants and pruning infeasible forks with the solver. Each
// surviving execution path records its path condition, the packets it
// sends (as terms over the symbolic inputs), and the state updates it
// performs — exactly the ingredients Algorithm 1 lines 11-16 refactor
// into model table entries.
package symexec

import (
	"runtime"
	"sort"
	"strconv"
	"time"

	"nfactor/internal/lang"
	"nfactor/internal/perf"
	"nfactor/internal/solver"
	"nfactor/internal/trace"
	"nfactor/internal/value"
)

// Options configure an execution.
type Options struct {
	// MaxPaths bounds the number of completed paths; exceeding it sets
	// Result.Exhausted (the ">1000 paths" cells of Table 2). The budget
	// is global across all workers.
	MaxPaths int
	// MaxSteps bounds the statements executed along a single path.
	MaxSteps int
	// LoopBound bounds symbolic loop iterations (§3.2: loops must be
	// bounded for symbolic execution to terminate).
	LoopBound int
	// Workers is the number of goroutines exploring the frontier;
	// 0 means runtime.GOMAXPROCS(0). Any value yields the same
	// deterministic Result (paths merge in fork-decision order);
	// Workers=1 walks the frontier exactly like the historical
	// sequential LIFO engine.
	Workers int
	// TimeBudget bounds the whole exploration's wall-clock time; when it
	// expires the run is cancelled and Result.Exhausted is set (the
	// paper's ">1hr" cells). Zero means no time budget.
	TimeBudget time.Duration
	// Cache, when set, memoizes SatConj/Simplify across all workers (and,
	// when the caller shares one Cache, across runs — the pipeline's
	// orig/slice/model executions hit many identical path prefixes).
	Cache *solver.Cache
	// Perf, when set, receives the exploration's counters (states,
	// forks, paths, pruned branches, steps, solver calls).
	Perf *perf.Set
	// Trace, when set, records one span per explored machine state (one
	// fork subtree each, annotated with its step/solver-call/prune
	// counts and completed path id), nested under the span TraceParent.
	// A nil tracer is strictly zero-cost: the step loop carries no
	// tracing code, and the per-state hook is a nil check.
	Trace *trace.Tracer
	// TraceParent is the span id the exploration's state spans nest
	// under (usually the pipeline's se.* phase span).
	TraceParent int64
	// ConfigVars are globals to treat as symbolic configuration scalars
	// (no @0 suffix) when their initial value is a scalar. Non-scalar
	// config (lists, maps) stays concrete.
	ConfigVars map[string]bool
	// StateVars are globals to treat as symbolic state: scalars become
	// Var{name@0}, maps become MapVar{name@0}.
	StateVars map[string]bool
	// ConfigOverride pins globals to concrete values before execution.
	ConfigOverride map[string]value.Value
	// NoPruning disables solver feasibility checks at branches (every
	// syntactic fork is explored). Ablation knob: shows how much path
	// explosion the solver absorbs.
	NoPruning bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxPaths == 0 {
		out.MaxPaths = 4096
	}
	if out.MaxSteps == 0 {
		out.MaxSteps = 20000
	}
	if out.LoopBound == 0 {
		out.LoopBound = 16
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	return out
}

// SendRec is one symbolic send(): the packet's fields as terms, plus the
// output interface.
type SendRec struct {
	Fields map[string]solver.Term
	Iface  solver.Term // Const string or symbolic; Const("") when absent
}

// FieldNames returns the sorted field names of the sent packet.
func (s SendRec) FieldNames() []string {
	out := make([]string, 0, len(s.Fields))
	for k := range s.Fields {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Update is a state update: global Name's value at the end of the path,
// as a term over the symbolic inputs.
type Update struct {
	Name string
	Val  solver.Term
}

// Path is one completed execution path.
type Path struct {
	// Conds is the path condition: a conjunction of branch literals.
	Conds []solver.Term
	// CondStmts are the AST statement IDs of the branches contributing
	// to Conds (aligned loosely; a branch can contribute several
	// literals).
	CondStmts []int
	// Sends are the packets emitted, in order. Empty means the implicit
	// drop action (§3.2).
	Sends []SendRec
	// Updates are the globals whose value changed along the path.
	Updates []Update
	// Visited is the number of distinct statements executed (the "path"
	// LoC column of Table 2).
	Visited int
	// VisitedIDs are the distinct statement IDs executed along the path,
	// sorted — the raw material of entry-to-source provenance (each
	// model entry's -why links back through these to AST positions).
	VisitedIDs []int
	// Seq is the path's coordinate in the execution tree: the sequence
	// of fork-decision indices that produced it (see PathID).
	Seq []int32
	// Truncated marks a path cut off by the loop bound or step budget.
	Truncated bool
}

// PathID renders a fork-decision sequence as a stable human-readable
// path identifier: "root" for the forkless path, else the dotted
// decision indices ("0.1.0"). It is identical at every worker count and
// is the id trace spans, model entries and `nfactor -why` share.
func PathID(seq []int32) string {
	if len(seq) == 0 {
		return "root"
	}
	b := make([]byte, 0, 2*len(seq))
	for i, d := range seq {
		if i > 0 {
			b = append(b, '.')
		}
		b = strconv.AppendInt(b, int64(d), 10)
	}
	return string(b)
}

// Dropped reports whether the path performs the implicit drop action.
func (p *Path) Dropped() bool { return len(p.Sends) == 0 }

// Result is the outcome of exploring a program.
type Result struct {
	Paths []*Path
	// Exhausted is set when the path budget was hit before exploration
	// finished — the analogue of the paper's ">1000 paths / >1hr" cells.
	Exhausted bool
}

// frameKind distinguishes continuation frames.
type frameKind int

const (
	frameBlock frameKind = iota
	frameWhile
	frameFor
)

type frame struct {
	kind  frameKind
	stmts []lang.Stmt
	idx   int

	// while frames
	loop *lang.WhileStmt
	iter int

	// for frames
	forStmt *lang.ForStmt
	elems   []solver.Term
	elemIdx int
}

// mstate is a machine state: a point in the exploration.
type mstate struct {
	frames  []frame
	locals  map[string]solver.Term
	globals map[string]solver.Term
	pkts    []map[string]solver.Term // packet records; PktRef indexes here

	conds     []solver.Term
	condStmts []int
	sends     []SendRec
	visited   map[int]bool
	steps     int
	truncated bool

	// seq is the sequence of fork-decision indices that produced this
	// state — the state's coordinate in the execution tree. Completed
	// paths sort by it, which makes Result.Paths independent of worker
	// scheduling.
	seq []int32

	// curSpan is the trace span the state currently belongs to: the
	// parent span for the span opened when this state is popped, then
	// (overwritten at pop) the parent for any children it forks. Cloned
	// to children; 0 when tracing is off.
	curSpan int64
	// evSolver/evPruned count the solver calls and pruned alternatives
	// of the CURRENT pop-to-event window (one branch at most). They are
	// deliberately NOT cloned: children start their own window at 0.
	evSolver, evPruned int
}

func (st *mstate) clone() *mstate {
	out := &mstate{
		frames:    make([]frame, len(st.frames)),
		locals:    make(map[string]solver.Term, len(st.locals)),
		globals:   make(map[string]solver.Term, len(st.globals)),
		pkts:      make([]map[string]solver.Term, len(st.pkts)),
		conds:     append([]solver.Term{}, st.conds...),
		condStmts: append([]int{}, st.condStmts...),
		sends:     append([]SendRec{}, st.sends...),
		visited:   make(map[int]bool, len(st.visited)),
		steps:     st.steps,
		truncated: st.truncated,
		seq:       append([]int32{}, st.seq...),
		curSpan:   st.curSpan,
	}
	copy(out.frames, st.frames)
	for k, v := range st.locals {
		out.locals[k] = v
	}
	for k, v := range st.globals {
		out.globals[k] = v
	}
	for i, rec := range st.pkts {
		nr := make(map[string]solver.Term, len(rec))
		for k, v := range rec {
			nr[k] = v
		}
		out.pkts[i] = nr
	}
	for k := range st.visited {
		out.visited[k] = true
	}
	return out
}

// pktRef is the term standing for a packet record in flight. It never
// appears in path conditions or actions (field reads/writes resolve it);
// it only lives in variable bindings.
type pktRef struct{ idx int }

func (pktRef) isTermMarker() {}

// We encode a packet reference as a solver.Var with a reserved prefix so
// it can flow through variable bindings without extending the term
// language.
const pktRefPrefix = "\x00pkt#"

func pktRefTerm(idx int) solver.Term {
	return solver.Var{Name: pktRefPrefix + string(rune('0'+idx))}
}

func pktRefIndex(t solver.Term) (int, bool) {
	v, ok := t.(solver.Var)
	if !ok || len(v.Name) < len(pktRefPrefix)+1 || v.Name[:len(pktRefPrefix)] != pktRefPrefix {
		return 0, false
	}
	return int(v.Name[len(pktRefPrefix)]) - '0', true
}
