package symexec

import (
	"strings"
	"testing"

	"nfactor/internal/lang"
	"nfactor/internal/value"
)

func TestNamedConstConfigKeepsName(t *testing.T) {
	res, err := Run(lang.MustParse(`
servers = [("1.1.1.1", 80), ("2.2.2.2", 80)];
idx = 0;
func process(pkt) {
    s = servers[idx];
    pkt.dip = s[0];
    idx = (idx + 1) % len(servers);
    send(pkt);
}`), "process", Options{
		ConfigVars: map[string]bool{"servers": true},
		StateVars:  map[string]bool{"idx": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Paths[0]
	if got := p.Sends[0].Fields["dip"].String(); got != "servers[idx@0][0]" {
		t.Errorf("dip = %q, want named-config indexing", got)
	}
	// len(servers) folded to 2 in the idx update.
	var idxUpdate string
	for _, u := range p.Updates {
		if u.Name == "idx" {
			idxUpdate = u.Val.String()
		}
	}
	if !strings.Contains(idxUpdate, "% 2") {
		t.Errorf("idx update = %q, want folded modulus", idxUpdate)
	}
}

func TestConfigMapMembershipAtomKeepsName(t *testing.T) {
	res, err := Run(lang.MustParse(`
blocked = {("tcp", 23): 1};
func process(pkt) {
    if (pkt.proto, pkt.dport) in blocked {
        return;
    }
    send(pkt);
}`), "process", Options{ConfigVars: map[string]bool{"blocked": true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 2 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
	found := false
	for _, p := range res.Paths {
		if strings.Contains(condsString(p), "in blocked") {
			found = true
		}
	}
	if !found {
		t.Error("membership atom lost the config map's name")
	}
}

func TestNestedIfSameConditionPrunes(t *testing.T) {
	// The same condition tested twice must not double the path count.
	res, err := Run(lang.MustParse(`
func process(pkt) {
    if pkt.dport == 80 { a = 1; }
    if pkt.dport == 80 { b = 2; }
    send(pkt);
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 2 {
		for _, p := range res.Paths {
			t.Logf("path: %s", condsString(p))
		}
		t.Fatalf("paths = %d, want 2 (correlated branches prune)", len(res.Paths))
	}
}

func TestNoPruningExploresAllSyntacticForks(t *testing.T) {
	src := `
func process(pkt) {
    if pkt.dport == 80 { a = 1; }
    if pkt.dport == 80 { b = 2; }
    send(pkt);
}`
	res, err := Run(lang.MustParse(src), "process", Options{NoPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 4 {
		t.Fatalf("paths without pruning = %d, want 4", len(res.Paths))
	}
}

func TestWhileWithBreakOnSymbolicCondition(t *testing.T) {
	res, err := Run(lang.MustParse(`
rules = [80, 443];
func process(pkt) {
    hit = 0;
    for r in rules {
        if pkt.dport == r {
            hit = 1;
            break;
        }
    }
    if hit == 1 {
        send(pkt);
    }
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// dport==80 | dport!=80&&dport==443 | neither → 3 paths, 2 sending.
	sends := 0
	for _, p := range res.Paths {
		if !p.Dropped() {
			sends++
		}
	}
	if len(res.Paths) != 3 || sends != 2 {
		t.Errorf("paths=%d sends=%d", len(res.Paths), sends)
	}
}

func TestMultipleSendsOnOnePath(t *testing.T) {
	res, err := Run(lang.MustParse(`
func process(pkt) {
    send(pkt, "tap");
    pkt.ttl = pkt.ttl - 1;
    send(pkt, "out");
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Paths[0]
	if len(p.Sends) != 2 {
		t.Fatalf("sends = %d", len(p.Sends))
	}
	// First snapshot has the original ttl (if read), the second the
	// decremented one.
	if got := p.Sends[1].Fields["ttl"].String(); got != "(pkt.ttl - 1)" {
		t.Errorf("second send ttl = %q", got)
	}
	if _, has := p.Sends[0].Fields["ttl"]; has {
		t.Error("first send should not have a ttl snapshot (never read before)")
	}
}

func TestFieldWriteThenReadResolvesToTerm(t *testing.T) {
	res, err := Run(lang.MustParse(`
func process(pkt) {
    pkt.mark = pkt.sport + 1;
    x = pkt.mark;
    pkt.dport = x * 2;
    send(pkt);
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Paths[0].Sends[0].Fields["dport"].String()
	if got != "((pkt.sport + 1) * 2)" {
		t.Errorf("dport = %q", got)
	}
}

func TestTupleUnpackSymbolic(t *testing.T) {
	res, err := Run(lang.MustParse(`
m = {};
func process(pkt) {
    m[pkt.sport] = (pkt.sip, pkt.dip);
    v = m[pkt.sport];
    a, b = v;
    pkt.sip = b;
    pkt.dip = a;
    send(pkt);
}`), "process", Options{StateVars: map[string]bool{"m": true}})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Paths[0].Sends[0].Fields
	// select-over-store folds: v = (pkt.sip, pkt.dip), so swap works.
	if f["sip"].String() != "pkt.dip" || f["dip"].String() != "pkt.sip" {
		t.Errorf("swap failed: sip=%s dip=%s", f["sip"], f["dip"])
	}
}

func TestConfigOverrideOfNamedConfig(t *testing.T) {
	// An overridden composite config still folds correctly.
	res, err := Run(lang.MustParse(`
ports = {80: 1};
func process(pkt) {
    if pkt.dport in ports {
        send(pkt);
    }
}`), "process", Options{
		ConfigVars: map[string]bool{"ports": true},
		ConfigOverride: map[string]value.Value{"ports": func() value.Value {
			m := value.NewMap()
			_ = m.Map.Set(value.Int(22), value.Int(1))
			return m
		}()},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Still 2 paths; membership atom references the overridden map.
	if len(res.Paths) != 2 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
}

func TestStepBudgetTruncates(t *testing.T) {
	res, err := Run(lang.MustParse(`
func process(pkt) {
    i = 0;
    while i < 100000 {
        i = i + 1;
    }
    send(pkt);
}`), "process", Options{MaxSteps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 1 || !res.Paths[0].Truncated {
		t.Errorf("step-budget truncation missing: %+v", res.Paths)
	}
}

func TestEmptyListForLoop(t *testing.T) {
	res, err := Run(lang.MustParse(`
xs = [];
func process(pkt) {
    for x in xs {
        pkt.never = 1;
    }
    send(pkt);
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 1 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
	if _, has := res.Paths[0].Sends[0].Fields["never"]; has {
		t.Error("empty loop body executed")
	}
}

func TestLogArgsEvaluatedSymbolically(t *testing.T) {
	// log of a symbolic select with guarded membership must not error.
	res, err := Run(lang.MustParse(`
m = {};
func process(pkt) {
    if pkt.sip in m {
        log("v", m[pkt.sip]);
    }
    send(pkt);
}`), "process", Options{StateVars: map[string]bool{"m": true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 2 {
		t.Errorf("paths = %d", len(res.Paths))
	}
}

func TestDropStatementNoEffect(t *testing.T) {
	res, err := Run(lang.MustParse(`
func process(pkt) {
    if pkt.ttl == 0 {
        drop();
        return;
    }
    send(pkt);
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	for _, p := range res.Paths {
		if p.Dropped() {
			drops++
		}
	}
	if drops != 1 {
		t.Errorf("drops = %d", drops)
	}
}
