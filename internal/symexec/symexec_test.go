package symexec

import (
	"strings"
	"testing"

	"nfactor/internal/lang"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

const lbSrc = `
mode = "RR";
LB_IP = "3.3.3.3";
LB_PORT = 80;
servers = [("1.1.1.1", 80), ("2.2.2.2", 80)];
f2b_nat = {};
b2f_nat = {};
rr_idx = 0;
cur_port = 10000;
pass_stat = 0;
drop_stat = 0;

func process(pkt) {
    si, di = pkt.sip, pkt.dip;
    sp, dp = pkt.sport, pkt.dport;
    if dp == LB_PORT {
        cs_ftpl = (si, sp, di, dp);
        sc_ftpl = (di, dp, si, sp);
        if !(cs_ftpl in f2b_nat) {
            if mode == "RR" {
                server = servers[rr_idx];
                rr_idx = (rr_idx + 1) % len(servers);
            } else {
                server = servers[hash(si) % len(servers)];
            }
            n_port = cur_port;
            cur_port = cur_port + 1;
            cs_btpl = (LB_IP, n_port, server[0], server[1]);
            sc_btpl = (server[0], server[1], LB_IP, n_port);
            f2b_nat[cs_ftpl] = cs_btpl;
            b2f_nat[sc_btpl] = sc_ftpl;
            nat_tpl = cs_btpl;
        } else {
            nat_tpl = f2b_nat[cs_ftpl];
        }
    } else {
        sc_btpl = (si, sp, di, dp);
        if sc_btpl in b2f_nat {
            nat_tpl = b2f_nat[sc_btpl];
        } else {
            drop_stat = drop_stat + 1;
            return;
        }
    }
    pass_stat = pass_stat + 1;
    pkt.sip = nat_tpl[0];
    pkt.sport = nat_tpl[1];
    pkt.dip = nat_tpl[2];
    pkt.dport = nat_tpl[3];
    send(pkt);
}
`

var lbOpts = Options{
	StateVars: map[string]bool{
		"f2b_nat": true, "b2f_nat": true, "rr_idx": true,
		"cur_port": true, "pass_stat": true, "drop_stat": true,
	},
	ConfigVars: map[string]bool{
		"mode": true, "LB_IP": true, "LB_PORT": true, "servers": true,
	},
}

func condsString(p *Path) string {
	parts := make([]string, len(p.Conds))
	for i, c := range p.Conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " && ")
}

func TestLoadBalancerPaths(t *testing.T) {
	res, err := Run(lang.MustParse(lbSrc), "process", lbOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted {
		t.Fatal("unexpected budget exhaustion")
	}
	if len(res.Paths) != 5 {
		for _, p := range res.Paths {
			t.Logf("path: %s sends=%d", condsString(p), len(p.Sends))
		}
		t.Fatalf("paths = %d, want 5 (RR-new, HASH-new, existing, reverse-hit, reverse-drop)", len(res.Paths))
	}

	drops, sends := 0, 0
	rrPaths := 0
	for _, p := range res.Paths {
		if p.Dropped() {
			drops++
			if !strings.Contains(condsString(p), "b2f_nat@0") {
				t.Errorf("drop path condition %q does not test b2f_nat", condsString(p))
			}
		} else {
			sends++
		}
		if strings.Contains(condsString(p), `(mode == "RR")`) {
			rrPaths++
		}
	}
	if drops != 1 || sends != 4 {
		t.Errorf("drops=%d sends=%d, want 1/4", drops, sends)
	}
	if rrPaths != 1 {
		t.Errorf("paths with mode==RR condition = %d, want 1", rrPaths)
	}
}

func TestLoadBalancerRRPathDetails(t *testing.T) {
	res, err := Run(lang.MustParse(lbSrc), "process", lbOpts)
	if err != nil {
		t.Fatal(err)
	}
	var rr *Path
	for _, p := range res.Paths {
		if strings.Contains(condsString(p), `mode == "RR"`) {
			rr = p
		}
	}
	if rr == nil {
		t.Fatal("no RR path")
	}
	// The RR path must update rr_idx to (rr_idx@0 + 1) % 2 and store into
	// both NAT maps.
	ups := map[string]string{}
	for _, u := range rr.Updates {
		ups[u.Name] = u.Val.String()
	}
	if got := ups["rr_idx"]; !strings.Contains(got, "rr_idx@0 + 1") || !strings.Contains(got, "% 2") {
		t.Errorf("rr_idx update = %q", got)
	}
	if got := ups["cur_port"]; !strings.Contains(got, "cur_port@0 + 1") {
		t.Errorf("cur_port update = %q", got)
	}
	if _, ok := ups["f2b_nat"]; !ok {
		t.Errorf("f2b_nat not updated: %v", ups)
	}
	if len(rr.Sends) != 1 {
		t.Fatalf("RR path sends = %d", len(rr.Sends))
	}
	// The sent packet's source must be rewritten to LB_IP (symbolic
	// config var).
	if got := rr.Sends[0].Fields["sip"].String(); got != "LB_IP" {
		t.Errorf("sent sip = %q, want LB_IP", got)
	}
	if got := rr.Sends[0].Fields["sport"].String(); got != "cur_port@0" {
		t.Errorf("sent sport = %q, want cur_port@0", got)
	}
}

func TestConcreteConfigFoldsModeBranch(t *testing.T) {
	opts := lbOpts
	opts.ConfigOverride = map[string]value.Value{"mode": value.Str("HASH")}
	res, err := Run(lang.MustParse(lbSrc), "process", opts)
	if err != nil {
		t.Fatal(err)
	}
	// With mode pinned, the RR/HASH fork disappears: 4 paths.
	if len(res.Paths) != 4 {
		t.Fatalf("paths = %d, want 4", len(res.Paths))
	}
	for _, p := range res.Paths {
		if strings.Contains(condsString(p), "mode") {
			t.Errorf("mode still appears in conditions: %s", condsString(p))
		}
	}
}

func TestInfeasiblePathPruned(t *testing.T) {
	res, err := Run(lang.MustParse(`
func process(pkt) {
    if pkt.sport < 3 {
        if pkt.sport > 5 {
            send(pkt);
        }
    }
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// sport<3 && sport>5 is infeasible: only 2 paths survive
	// (sport>=3, and sport<3 && sport<=5).
	if len(res.Paths) != 2 {
		for _, p := range res.Paths {
			t.Logf("path: %s", condsString(p))
		}
		t.Fatalf("paths = %d, want 2", len(res.Paths))
	}
	for _, p := range res.Paths {
		if !p.Dropped() {
			t.Error("infeasible send path survived")
		}
	}
}

func TestCompoundConditionDecomposition(t *testing.T) {
	res, err := Run(lang.MustParse(`
func process(pkt) {
    if pkt.sport == 80 || pkt.dport == 80 {
        send(pkt);
    }
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// true-alternatives: {sp==80}, {sp!=80, dp==80}; false: {sp!=80,dp!=80}
	if len(res.Paths) != 3 {
		t.Fatalf("paths = %d, want 3", len(res.Paths))
	}
	sendCount := 0
	for _, p := range res.Paths {
		if !p.Dropped() {
			sendCount++
		}
	}
	if sendCount != 2 {
		t.Errorf("send paths = %d, want 2", sendCount)
	}
}

func TestConcreteLoopUnrollsWithoutForking(t *testing.T) {
	res, err := Run(lang.MustParse(`
func process(pkt) {
    i = 0;
    total = 0;
    while i < 3 {
        total = total + i;
        i = i + 1;
    }
    pkt.total = total;
    send(pkt);
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(res.Paths))
	}
	if got := res.Paths[0].Sends[0].Fields["total"].String(); got != "3" {
		t.Errorf("total = %s, want 3 (0+1+2)", got)
	}
}

func TestSymbolicLoopBounded(t *testing.T) {
	res, err := Run(lang.MustParse(`
func process(pkt) {
    i = 0;
    while i < pkt.n {
        i = i + 1;
    }
    send(pkt);
}`), "process", Options{LoopBound: 4, MaxPaths: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Paths: exit after 0..3 iterations plus one truncated at the bound.
	if len(res.Paths) != 5 {
		t.Fatalf("paths = %d, want 5", len(res.Paths))
	}
	truncated := 0
	for _, p := range res.Paths {
		if p.Truncated {
			truncated++
		}
	}
	if truncated != 1 {
		t.Errorf("truncated paths = %d, want 1", truncated)
	}
}

func TestPathBudgetExhaustion(t *testing.T) {
	// 8 independent branches → 256 paths; budget 10.
	src := `func process(pkt) {
`
	for _, f := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		src += "    if pkt." + f + " == 1 { x = 1; }\n"
	}
	src += "    send(pkt);\n}"
	res, err := Run(lang.MustParse(src), "process", Options{MaxPaths: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Error("budget not reported exhausted")
	}
	if len(res.Paths) != 10 {
		t.Errorf("paths = %d, want 10", len(res.Paths))
	}
}

func TestForInUnrolls(t *testing.T) {
	res, err := Run(lang.MustParse(`
servers = [1, 2, 3];
func process(pkt) {
    total = 0;
    for s in servers {
        total = total + s;
    }
    pkt.total = total;
    send(pkt);
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 1 || res.Paths[0].Sends[0].Fields["total"].String() != "6" {
		t.Fatalf("for-in result wrong: %v paths", len(res.Paths))
	}
}

func TestBreakContinueInSymbolicContext(t *testing.T) {
	res, err := Run(lang.MustParse(`
rules = [10, 20, 30];
func process(pkt) {
    matched = 0;
    for r in rules {
        if r == 20 { continue; }
        if pkt.dport == r {
            matched = 1;
            break;
        }
    }
    if matched == 1 { send(pkt); }
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// dport==10 → send; dport!=10,dport==30 → send; neither → drop.
	sends := 0
	for _, p := range res.Paths {
		if !p.Dropped() {
			sends++
		}
	}
	if sends != 2 || len(res.Paths) != 3 {
		for _, p := range res.Paths {
			t.Logf("path: %s dropped=%v", condsString(p), p.Dropped())
		}
		t.Fatalf("paths=%d sends=%d, want 3/2 (continue must skip rule 20)", len(res.Paths), sends)
	}
}

func TestHashIsUninterpreted(t *testing.T) {
	res, err := Run(lang.MustParse(`
func process(pkt) {
    pkt.h = hash(pkt.sip) % 4;
    send(pkt);
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Paths[0].Sends[0].Fields["h"].String()
	if !strings.Contains(got, "hash(pkt.sip)") {
		t.Errorf("h = %q, want uninterpreted hash term", got)
	}
}

func TestStateUpdateStoreChain(t *testing.T) {
	res, err := Run(lang.MustParse(`
m = {};
func process(pkt) {
    m[pkt.sport] = pkt.dport;
    send(pkt);
}`), "process", Options{StateVars: map[string]bool{"m": true}})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Paths[0]
	if len(p.Updates) != 1 || p.Updates[0].Name != "m" {
		t.Fatalf("updates = %v", p.Updates)
	}
	if got := p.Updates[0].Val.String(); !strings.Contains(got, "m@0{pkt.sport := pkt.dport}") {
		t.Errorf("m update = %q", got)
	}
}

func TestMembershipAfterStoreFoldsOnSamePath(t *testing.T) {
	// After storing k, `k in m` must fold to true without forking.
	res, err := Run(lang.MustParse(`
m = {};
func process(pkt) {
    k = (pkt.sip, pkt.sport);
    m[k] = 1;
    if k in m {
        send(pkt);
    }
}`), "process", Options{StateVars: map[string]bool{"m": true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 1 || res.Paths[0].Dropped() {
		t.Fatalf("paths = %d, want a single sending path", len(res.Paths))
	}
}

func TestVisitedCountsPathLoC(t *testing.T) {
	res, err := Run(lang.MustParse(`
func process(pkt) {
    if pkt.dport == 80 {
        a = 1;
        b = 2;
    } else {
        c = 3;
    }
    send(pkt);
}`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 2 {
		t.Fatal("want 2 paths")
	}
	// then-path visits if + 2 assigns + send = 4; else-path if + 1 + send = 3.
	counts := []int{res.Paths[0].Visited, res.Paths[1].Visited}
	if !(counts[0] == 4 && counts[1] == 3 || counts[0] == 3 && counts[1] == 4) {
		t.Errorf("visited = %v, want {3,4}", counts)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		opts Options
	}{
		{`func process(pkt) { x = novar; }`, Options{}},
		{`func helper(x) { return x; } func process(pkt) { y = helper(1); }`, Options{}},
		{`m = {}; func process(pkt) { for k in m { send(pkt); } x = pkt.zzz; }`, Options{StateVars: map[string]bool{"m": true}}},
	}
	for _, c := range cases {
		if _, err := Run(lang.MustParse(c.src), "process", c.opts); err == nil {
			t.Errorf("no error for %q", c.src)
		}
	}
}

func TestSendIfaceRecorded(t *testing.T) {
	res, err := Run(lang.MustParse(`
func process(pkt) { send(pkt, "eth1"); }`), "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Paths[0].Sends[0].Iface.String(); got != `"eth1"` {
		t.Errorf("iface = %s", got)
	}
}

func TestDelBuiltinSymbolic(t *testing.T) {
	res, err := Run(lang.MustParse(`
m = {};
func process(pkt) {
    del(m, pkt.sport);
    if pkt.sport in m {
        send(pkt);
    }
}`), "process", Options{StateVars: map[string]bool{"m": true}})
	if err != nil {
		t.Fatal(err)
	}
	// After del, membership of the same key folds to false: single drop path.
	if len(res.Paths) != 1 || !res.Paths[0].Dropped() {
		t.Fatalf("paths = %d, want 1 dropped", len(res.Paths))
	}
	if len(res.Paths[0].Updates) != 1 {
		t.Errorf("updates = %v", res.Paths[0].Updates)
	}
}

func TestPathCondsAreFeasibleTerms(t *testing.T) {
	res, err := Run(lang.MustParse(lbSrc), "process", lbOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Paths {
		if !solver.SatConj(p.Conds) {
			t.Errorf("recorded path has unsat condition: %s", condsString(p))
		}
		if len(p.Conds) != len(p.CondStmts) {
			t.Errorf("conds/condStmts misaligned: %d vs %d", len(p.Conds), len(p.CondStmts))
		}
	}
}
