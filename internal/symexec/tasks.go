package symexec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunIndexed runs n independent tasks over a pool of min(workers, n)
// goroutines (workers <= 0: GOMAXPROCS), the same atomic-counter fan-out
// the path-refinement and experiment layers use. Tasks are identified by
// index; each task writes its result at its own index, so callers get
// output identical at every worker count — the determinism contract the
// parallel explorer established, reused by model refinement and the
// symbolic topology explorer in internal/verify.
func RunIndexed(n, workers int, task func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}
