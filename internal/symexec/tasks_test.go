package symexec

import (
	"sync/atomic"
	"testing"
)

func TestRunIndexedCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 9} {
		const n = 137
		var hits [n]atomic.Int32
		RunIndexed(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunIndexedResultsWorkerInvariant(t *testing.T) {
	run := func(workers int) [64]int {
		var out [64]int
		RunIndexed(len(out), workers, func(i int) { out[i] = i * i })
		return out
	}
	if run(1) != run(4) {
		t.Fatal("indexed results differ across worker counts")
	}
}

func TestRunIndexedZeroTasks(t *testing.T) {
	RunIndexed(0, 4, func(int) { t.Fatal("task ran for n=0") })
}
