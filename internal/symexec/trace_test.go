package symexec

import (
	"strings"
	"testing"

	"nfactor/internal/lang"
	"nfactor/internal/trace"
)

// The span tree must be scheduling-invariant: spans are named by the
// state's fork-decision PathID and the canonical rendering sorts children
// and omits timestamps/lanes, so exploring with one worker and with four
// must record byte-identical trees.
func TestTraceTreeDeterministicAcrossWorkers(t *testing.T) {
	trees := make(map[int]string)
	for _, workers := range []int{1, 4} {
		tr := trace.New()
		opts := lbOpts
		opts.Workers = workers
		opts.Trace = tr
		res, err := Run(lang.MustParse(lbSrc), "process", opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Paths) != 5 {
			t.Fatalf("workers=%d: paths = %d, want 5", workers, len(res.Paths))
		}
		if tr.SpanCount() == 0 {
			t.Fatalf("workers=%d: no spans recorded", workers)
		}
		trees[workers] = tr.Tree(false)
	}
	if trees[1] != trees[4] {
		t.Fatalf("span tree differs across worker counts:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", trees[1], trees[4])
	}
	tree := trees[1]
	if !strings.Contains(tree, "state root") {
		t.Fatalf("tree missing the root state span:\n%s", tree)
	}
	if !strings.Contains(tree, "solver_calls=") {
		t.Fatalf("no state span carries a solver-call annotation:\n%s", tree)
	}
	if !strings.Contains(tree, "path=") {
		t.Fatalf("no completed-path annotation in tree:\n%s", tree)
	}
}

// Every completed path must carry its provenance raw material: the
// fork-decision sequence (unique, PathID-renderable) and the sorted
// statement ids it executed.
func TestPathsCarryProvenance(t *testing.T) {
	res, err := Run(lang.MustParse(lbSrc), "process", lbOpts)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range res.Paths {
		id := PathID(p.Seq)
		if seen[id] {
			t.Fatalf("duplicate path id %q", id)
		}
		seen[id] = true
		if len(p.VisitedIDs) != p.Visited {
			t.Fatalf("path %s: VisitedIDs has %d ids, Visited says %d", id, len(p.VisitedIDs), p.Visited)
		}
		for i := 1; i < len(p.VisitedIDs); i++ {
			if p.VisitedIDs[i-1] >= p.VisitedIDs[i] {
				t.Fatalf("path %s: VisitedIDs not strictly sorted: %v", id, p.VisitedIDs)
			}
		}
		if len(p.CondStmts) != len(p.Conds) {
			t.Fatalf("path %s: %d cond sites for %d conds", id, len(p.CondStmts), len(p.Conds))
		}
	}
}

func TestPathID(t *testing.T) {
	if got := PathID(nil); got != "root" {
		t.Fatalf("PathID(nil) = %q", got)
	}
	if got := PathID([]int32{0, 1, 10}); got != "0.1.10" {
		t.Fatalf("PathID = %q, want 0.1.10", got)
	}
}

// The disabled-tracer fast path: the only tracing code a nil tracer
// leaves in the exploration loop is the per-state nil guard in work()
// (the step loop itself carries none). That guard path must not allocate.
func TestDisabledTracerSteppingIsAllocFree(t *testing.T) {
	var tr *trace.Tracer
	st := &mstate{curSpan: 0}
	allocs := testing.AllocsPerRun(1000, func() {
		// Exactly the per-state hook work() performs when tracing is off.
		var sp *trace.Span
		if tr != nil {
			sp = tr.Start(trace.CatState, PathID(st.seq), st.curSpan)
		}
		if sp != nil {
			sp.End()
		}
		st.evSolver, st.evPruned = 0, 0
	})
	if allocs != 0 {
		t.Fatalf("disabled-tracer per-state hook allocates %.1f allocs/op, want 0", allocs)
	}
}
