package telemetry

import "math/bits"

// NumBuckets is the histogram's fixed bucket count. Bucket i holds
// values whose bit length is i, i.e. [2^(i-1), 2^i) nanoseconds (bucket
// 0 holds exactly 0). 40 buckets cover up to ~18 minutes per packet,
// far beyond any single-packet latency; larger values clamp into the
// last bucket.
const NumBuckets = 40

// Histogram is a fixed-size log2-bucketed latency histogram. It lives
// inline in a Sink (no pointer, no heap) and Observe is allocation-free.
type Histogram struct {
	Counts  [NumBuckets]int64
	Samples int64
	SumNs   int64
	MaxNs   int64
}

// Observe records one latency sample in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	h.Counts[b]++
	h.Samples++
	h.SumNs += ns
	if ns > h.MaxNs {
		h.MaxNs = ns
	}
}

// Add accumulates another histogram into h (shard merge).
func (h *Histogram) Add(o Histogram) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Samples += o.Samples
	h.SumNs += o.SumNs
	if o.MaxNs > h.MaxNs {
		h.MaxNs = o.MaxNs
	}
}

// BucketBound returns the exclusive upper bound of bucket i in
// nanoseconds (0 -> 1ns, i -> 2^i ns).
func BucketBound(i int) int64 {
	if i <= 0 {
		return 1
	}
	return int64(1) << uint(i)
}

// Mean returns the average sample in nanoseconds (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Samples == 0 {
		return 0
	}
	return float64(h.SumNs) / float64(h.Samples)
}

// Quantile returns an upper bound (the bucket boundary) for the q-th
// quantile, q in [0,1]. With log2 buckets the bound is within 2x of the
// true value — the right fidelity for "is p99 microseconds or
// milliseconds" questions.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Samples == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.Samples))
	if rank >= h.Samples {
		rank = h.Samples - 1
	}
	var seen int64
	for i := range h.Counts {
		seen += h.Counts[i]
		if seen > rank {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}
