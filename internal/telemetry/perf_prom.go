package telemetry

import (
	"fmt"
	"io"
	"sort"

	"nfactor/internal/perf"
)

// WritePerfPrometheus renders a synthesis-pipeline perf set in the
// Prometheus text exposition format, alongside (and composable with) the
// data-plane series WritePrometheus emits: the pipeline series live in
// their own nfactor_pipeline_* namespace, so one scrape endpoint can
// serve both without duplicated metric names.
func WritePerfPrometheus(w io.Writer, nf string, ps *perf.Set) error {
	if ps == nil {
		return nil
	}
	doc := ps.JSON()
	lbl := fmt.Sprintf("nf=%q", nf)
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}

	if len(doc.Counters) > 0 {
		if err := p("# HELP nfactor_pipeline_counter Synthesis-pipeline event counters (states, forks, solver calls, cache hits, ...).\n# TYPE nfactor_pipeline_counter counter\n"); err != nil {
			return err
		}
		names := make([]string, 0, len(doc.Counters))
		for k := range doc.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			if err := p("nfactor_pipeline_counter{%s,counter=%q} %d\n", lbl, k, doc.Counters[k]); err != nil {
				return err
			}
		}
	}

	if len(doc.Phases) > 0 {
		if err := p("# HELP nfactor_pipeline_phase_seconds Wall-clock time per Algorithm 1 phase.\n# TYPE nfactor_pipeline_phase_seconds counter\n"); err != nil {
			return err
		}
		names := make([]string, 0, len(doc.Phases))
		for k := range doc.Phases {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			if err := p("nfactor_pipeline_phase_seconds{%s,phase=%q} %g\n", lbl, k, float64(doc.Phases[k].WallNs)/1e9); err != nil {
				return err
			}
		}
		if doc.CPUSupported {
			if err := p("# HELP nfactor_pipeline_phase_cpu_seconds CPU time per Algorithm 1 phase (Linux only).\n# TYPE nfactor_pipeline_phase_cpu_seconds counter\n"); err != nil {
				return err
			}
			for _, k := range names {
				if err := p("nfactor_pipeline_phase_cpu_seconds{%s,phase=%q} %g\n", lbl, k, float64(doc.Phases[k].CPUNs)/1e9); err != nil {
					return err
				}
			}
		}
		if err := p("# HELP nfactor_pipeline_phase_calls Invocations per phase.\n# TYPE nfactor_pipeline_phase_calls counter\n"); err != nil {
			return err
		}
		for _, k := range names {
			if err := p("nfactor_pipeline_phase_calls{%s,phase=%q} %d\n", lbl, k, doc.Phases[k].Calls); err != nil {
				return err
			}
		}
	}
	return nil
}
