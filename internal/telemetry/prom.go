package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). nf labels every series with the NF the model
// was synthesized from; the backend label carries the engine kind.
func (s Snapshot) WritePrometheus(w io.Writer, nf string) error {
	lbl := fmt.Sprintf("nf=%q,backend=%q", nf, s.Backend)
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("# HELP nfactor_packets_total Packets processed.\n# TYPE nfactor_packets_total counter\nnfactor_packets_total{%s} %d\n", lbl, s.Packets); err != nil {
		return err
	}
	if err := p("# HELP nfactor_verdicts_total Packets by verdict.\n# TYPE nfactor_verdicts_total counter\n"); err != nil {
		return err
	}
	for _, v := range []struct {
		verdict string
		n       int64
	}{{"forward", s.Forwards}, {"drop", s.Drops}, {"error", s.Errors}} {
		if err := p("nfactor_verdicts_total{%s,verdict=%q} %d\n", lbl, v.verdict, v.n); err != nil {
			return err
		}
	}
	if err := p("# HELP nfactor_default_drops_total Drops by the implicit lowest-priority drop.\n# TYPE nfactor_default_drops_total counter\nnfactor_default_drops_total{%s} %d\n", lbl, s.DefaultDrops); err != nil {
		return err
	}
	if err := p("# HELP nfactor_entry_hits_total Table-entry fire counts.\n# TYPE nfactor_entry_hits_total counter\n"); err != nil {
		return err
	}
	for i, h := range s.EntryHits {
		if err := p("nfactor_entry_hits_total{%s,entry=\"%d\"} %d\n", lbl, i, h); err != nil {
			return err
		}
	}
	if len(s.StateSizes) > 0 {
		if err := p("# HELP nfactor_state_size OIS state variable sizes (map entry counts).\n# TYPE nfactor_state_size gauge\n"); err != nil {
			return err
		}
		names := make([]string, 0, len(s.StateSizes))
		for k := range s.StateSizes {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			if err := p("nfactor_state_size{%s,var=%q} %d\n", lbl, k, s.StateSizes[k]); err != nil {
				return err
			}
		}
	}
	if err := p("# HELP nfactor_latency_ns Sampled per-packet latency histogram (log2 buckets).\n# TYPE nfactor_latency_ns histogram\n"); err != nil {
		return err
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		if s.Latency.Counts[i] == 0 && i > 0 {
			continue // sparse render: Prometheus cumulative buckets tolerate gaps
		}
		cum += s.Latency.Counts[i]
		if err := p("nfactor_latency_ns_bucket{%s,le=\"%d\"} %d\n", lbl, BucketBound(i), cum); err != nil {
			return err
		}
	}
	if err := p("nfactor_latency_ns_bucket{%s,le=\"+Inf\"} %d\n", lbl, s.Latency.Samples); err != nil {
		return err
	}
	if err := p("nfactor_latency_ns_sum{%s} %d\n", lbl, s.Latency.SumNs); err != nil {
		return err
	}
	return p("nfactor_latency_ns_count{%s} %d\n", lbl, s.Latency.Samples)
}
