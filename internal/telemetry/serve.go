package telemetry

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// ServeStats is the serving loop's own telemetry, layered over the
// engine Snapshot: generation bookkeeping for hot swaps and the
// per-packet consistency check. A Server publishes an immutable copy
// after every batch.
type ServeStats struct {
	// Generation is the epoch of the currently serving engine; it starts
	// at 1 and increments once per applied swap.
	Generation uint64
	// Packets is the total served (ingress) packet count across all
	// generations.
	Packets int64
	// Swaps counts applied generation swaps; SwapsBlocked counts swap
	// requests the gate refused (candidate faithfulness or behavior
	// divergence over the live window).
	Swaps        int64
	SwapsBlocked int64
	// CarriedVars / ResetVars total the per-variable carry-over
	// decisions across all applied swaps.
	CarriedVars int64
	ResetVars   int64
	// EpochViolations counts packets whose output epoch broke the
	// per-packet consistency invariant: every batch must be uniformly
	// stamped with the serving generation, and stamps must never move
	// backwards. Always 0 unless the swap barrier is broken.
	EpochViolations int64
	// LastSwapPauseNs is how long the data plane was quiesced while the
	// most recent swap diffed, carried state and rebuilt the plane.
	LastSwapPauseNs int64
	// WindowLen is the number of recently served packets currently held
	// for gating the next swap.
	WindowLen int64
}

// Report renders a one-line human-readable summary.
func (s ServeStats) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "generation=%d packets=%d swaps=%d blocked=%d epoch_violations=%d",
		s.Generation, s.Packets, s.Swaps, s.SwapsBlocked, s.EpochViolations)
	if s.Swaps > 0 {
		fmt.Fprintf(&b, " carried=%d reset=%d last_pause=%s",
			s.CarriedVars, s.ResetVars, time.Duration(s.LastSwapPauseNs))
	}
	fmt.Fprintf(&b, " window=%d", s.WindowLen)
	return b.String()
}

// WriteServePrometheus renders the serving gauges and counters in the
// Prometheus text exposition format, alongside Snapshot.WritePrometheus
// output for the serving engine.
func (s ServeStats) WriteServePrometheus(w io.Writer, nf string) error {
	lbl := fmt.Sprintf("nf=%q", nf)
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	rows := []struct {
		name, help, typ string
		v               int64
	}{
		{"nfactor_serve_generation", "Epoch of the serving engine generation.", "gauge", int64(s.Generation)},
		{"nfactor_serve_packets_total", "Packets served across all generations.", "counter", s.Packets},
		{"nfactor_serve_swaps_total", "Applied engine generation swaps.", "counter", s.Swaps},
		{"nfactor_serve_swaps_blocked_total", "Swap requests refused by the equivalence gate.", "counter", s.SwapsBlocked},
		{"nfactor_serve_carried_vars_total", "State variables carried across swaps.", "counter", s.CarriedVars},
		{"nfactor_serve_reset_vars_total", "State variables reset across swaps.", "counter", s.ResetVars},
		{"nfactor_serve_epoch_violations_total", "Packets that broke per-packet generation consistency.", "counter", s.EpochViolations},
		{"nfactor_serve_last_swap_pause_ns", "Data-plane quiesce time of the most recent swap.", "gauge", s.LastSwapPauseNs},
		{"nfactor_serve_window_packets", "Live traffic window held for swap gating.", "gauge", s.WindowLen},
	}
	for _, r := range rows {
		if err := p("# HELP %s %s\n# TYPE %s %s\n%s{%s} %d\n", r.name, r.help, r.name, r.typ, r.name, lbl, r.v); err != nil {
			return err
		}
	}
	return nil
}
