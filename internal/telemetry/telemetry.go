// Package telemetry is the data-plane observability surface: always-on,
// allocation-free per-entry hit counters, per-verdict counters, sampled
// per-packet latency histograms and state-size gauges for every
// execution engine (the reference model.Instance, the compiled
// dataplane.Engine, the flow-sharded dataplane.Sharded, and the original
// program under replay). OpenFlow tables carry per-entry counters as
// part of the table abstraction itself; the synthesized models are
// OpenFlow-like tables, so their counters live here.
//
// Design rules, in order:
//
//   - Zero allocations on the per-packet path. A Sink is a fixed set of
//     plain int64 fields plus one fixed-size histogram array; Start and
//     Count never allocate, and Snapshot (which does allocate) is a
//     read-side operation.
//   - No atomics on the per-packet path. Every engine is single-threaded
//     by design (the sharded engine gives each shard its own Engine and
//     its own Sink); snapshots of a sharded engine are merged on read.
//     Like Engine.State(), reading a Sink that another goroutine is
//     writing mid-batch is a race — read between batches.
//   - Nil-safe. All Sink methods are no-ops on a nil receiver (the
//     internal/perf convention), so callers can disable telemetry for
//     pure benchmarking without a branch at every call site.
//
// Latency is sampled (default 1 in 16 packets) rather than measured on
// every packet: two clock reads cost ~50ns, which on a ~100-300ns/pkt
// compiled engine would alone exceed the 10% overhead budget the
// counters must fit in. SetSampleEvery(1) restores exhaustive timing
// for tests.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// DefaultSampleEvery is the default latency sampling period: one in
// every 16 packets gets the two time.Now calls.
const DefaultSampleEvery = 16

// Sink accumulates one engine's telemetry. It is single-writer; see the
// package comment for the concurrency rules.
type Sink struct {
	packets  int64
	forwards int64
	drops    int64
	errors   int64
	// defaultDrops counts drops by the implicit lowest-priority drop
	// (no entry matched, fired entry = -1); a subset of drops.
	defaultDrops int64
	// entryHits is indexed by the *original* model entry index, so
	// engines that prune entries at compile time still report hits in
	// model coordinates.
	entryHits []int64

	lat        Histogram
	seen       uint64 // packets started, drives sampling
	sampleMask uint64 // sample when seen&mask == 0
}

// NewSink returns a Sink with per-entry counters for a model of
// `entries` table entries.
func NewSink(entries int) *Sink {
	return &Sink{entryHits: make([]int64, entries), sampleMask: DefaultSampleEvery - 1}
}

// SetSampleEvery sets the latency sampling period to every n-th packet.
// n is rounded down to a power of two; n <= 1 times every packet.
func (s *Sink) SetSampleEvery(n int) {
	if s == nil {
		return
	}
	mask := uint64(0)
	for n > 1 {
		mask = mask<<1 | 1
		n >>= 1
	}
	s.sampleMask = mask
}

// Start begins one packet's accounting and returns its latency
// timestamp — the zero Time unless this packet is sampled. Nil-safe.
func (s *Sink) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.seen++
	if s.seen&s.sampleMask != 0 {
		return time.Time{}
	}
	return time.Now()
}

// Count finishes one packet's accounting: entry is the model entry that
// fired (-1 for the implicit drop; ignored when errored), and t0 is the
// timestamp Start returned. Nil-safe, allocation-free.
func (s *Sink) Count(t0 time.Time, entry int, dropped, errored bool) {
	if s == nil {
		return
	}
	s.packets++
	switch {
	case errored:
		s.errors++
	case dropped:
		s.drops++
		if entry >= 0 && entry < len(s.entryHits) {
			s.entryHits[entry]++
		} else {
			s.defaultDrops++
		}
	default:
		s.forwards++
		if entry >= 0 && entry < len(s.entryHits) {
			s.entryHits[entry]++
		}
	}
	if !t0.IsZero() {
		s.lat.Observe(time.Since(t0).Nanoseconds())
	}
}

// Reset zeroes every counter and the histogram (the sampling period is
// kept). Nil-safe.
func (s *Sink) Reset() {
	if s == nil {
		return
	}
	mask := s.sampleMask
	hits := s.entryHits
	for i := range hits {
		hits[i] = 0
	}
	*s = Sink{entryHits: hits, sampleMask: mask}
}

// Snapshot exports the sink's current values. backend names the engine
// kind ("model", "compiled", "sharded", "program"); stateSizes carries
// the per-OIS-map entry counts the caller gauges at read time.
func (s *Sink) Snapshot(backend string, stateSizes map[string]int) Snapshot {
	snap := Snapshot{Backend: backend, StateSizes: stateSizes, Shards: 1}
	if s == nil {
		return snap
	}
	snap.Packets = s.packets
	snap.Forwards = s.forwards
	snap.Drops = s.drops
	snap.Errors = s.errors
	snap.DefaultDrops = s.defaultDrops
	snap.EntryHits = append([]int64(nil), s.entryHits...)
	snap.Latency = s.lat
	snap.SampleEvery = int(s.sampleMask) + 1
	return snap
}

// Snapshot is a point-in-time export of an engine's telemetry: the
// structured Go form behind the Prometheus text format and the CLI
// reports.
type Snapshot struct {
	// Backend names the engine kind: "program", "model", "compiled",
	// "sharded".
	Backend string
	// Packets = Forwards + Drops + Errors.
	Packets  int64
	Forwards int64
	Drops    int64
	Errors   int64
	// DefaultDrops counts the subset of Drops where no table entry
	// matched (the model's implicit lowest-priority drop).
	DefaultDrops int64
	// EntryHits is indexed by model entry; entry i fired EntryHits[i]
	// times (forwarding or dropping — firing an explicit drop entry
	// counts here, not in DefaultDrops).
	EntryHits []int64
	// Latency is the per-packet processing-time histogram, built from
	// every SampleEvery-th packet.
	Latency     Histogram
	SampleEvery int
	// StateSizes gauges each OIS state variable at snapshot time:
	// map entry count for maps, 1 for scalars.
	StateSizes map[string]int
	// Shards is the number of underlying engines merged into this
	// snapshot (1 for unsharded backends).
	Shards int
}

// Merge returns the sum of two snapshots: counters, entry hits,
// histograms and state sizes add; Shards accumulates. The sharded
// engine merges its per-shard sinks with this on read.
func (a Snapshot) Merge(b Snapshot) Snapshot {
	out := a
	out.Packets += b.Packets
	out.Forwards += b.Forwards
	out.Drops += b.Drops
	out.Errors += b.Errors
	out.DefaultDrops += b.DefaultDrops
	out.EntryHits = append([]int64(nil), a.EntryHits...)
	for len(out.EntryHits) < len(b.EntryHits) {
		out.EntryHits = append(out.EntryHits, 0)
	}
	for i, h := range b.EntryHits {
		out.EntryHits[i] += h
	}
	out.Latency.Add(b.Latency)
	out.StateSizes = map[string]int{}
	for k, v := range a.StateSizes {
		out.StateSizes[k] += v
	}
	for k, v := range b.StateSizes {
		out.StateSizes[k] += v
	}
	out.Shards += b.Shards
	return out
}

// CountersEqual reports whether two snapshots agree on every
// deterministic quantity: packet/verdict counters, per-entry hits and
// state sizes. Latency, sampling, backend and shard count are excluded —
// timing is nondeterministic by nature, and the whole point of the
// comparison is that the same workload on different engine layouts
// (1 shard vs 8, compiled vs reference) must count identically.
func (a Snapshot) CountersEqual(b Snapshot) bool {
	if a.Packets != b.Packets || a.Forwards != b.Forwards ||
		a.Drops != b.Drops || a.Errors != b.Errors || a.DefaultDrops != b.DefaultDrops {
		return false
	}
	hits := func(s Snapshot, i int) int64 {
		if i < len(s.EntryHits) {
			return s.EntryHits[i]
		}
		return 0
	}
	n := len(a.EntryHits)
	if len(b.EntryHits) > n {
		n = len(b.EntryHits)
	}
	for i := 0; i < n; i++ {
		if hits(a, i) != hits(b, i) {
			return false
		}
	}
	if len(a.StateSizes) != len(b.StateSizes) {
		return false
	}
	for k, v := range a.StateSizes {
		if b.StateSizes[k] != v {
			return false
		}
	}
	return true
}

// Report renders the snapshot as a human-readable block (the CLI
// -telemetry surface).
func (s Snapshot) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "telemetry (%s", s.Backend)
	if s.Shards > 1 {
		fmt.Fprintf(&sb, ", %d shards", s.Shards)
	}
	sb.WriteString(")\n")
	fmt.Fprintf(&sb, "  packets  %12d\n", s.Packets)
	fmt.Fprintf(&sb, "  forward  %12d\n", s.Forwards)
	fmt.Fprintf(&sb, "  drop     %12d  (%d by the implicit default drop)\n", s.Drops, s.DefaultDrops)
	fmt.Fprintf(&sb, "  error    %12d\n", s.Errors)
	for i, h := range s.EntryHits {
		fmt.Fprintf(&sb, "  entry %-3d%12d hits\n", i, h)
	}
	if len(s.StateSizes) > 0 {
		names := make([]string, 0, len(s.StateSizes))
		for k := range s.StateSizes {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(&sb, "  state %-18s %6d entries\n", k, s.StateSizes[k])
		}
	}
	if s.Latency.Samples > 0 {
		fmt.Fprintf(&sb, "  latency  p50<=%s p90<=%s p99<=%s max=%s (%d samples, 1 in %d)\n",
			time.Duration(s.Latency.Quantile(0.50)),
			time.Duration(s.Latency.Quantile(0.90)),
			time.Duration(s.Latency.Quantile(0.99)),
			time.Duration(s.Latency.MaxNs),
			s.Latency.Samples, s.SampleEvery)
	}
	return sb.String()
}
