package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestSinkCounts(t *testing.T) {
	s := NewSink(3)
	s.Count(time.Time{}, 0, false, false) // forward via entry 0
	s.Count(time.Time{}, 0, false, false)
	s.Count(time.Time{}, 2, true, false)  // explicit drop entry
	s.Count(time.Time{}, -1, true, false) // implicit default drop
	s.Count(time.Time{}, 1, false, true)  // error (entry ignored)

	snap := s.Snapshot("model", map[string]int{"nat": 4})
	if snap.Packets != 5 || snap.Forwards != 2 || snap.Drops != 2 || snap.Errors != 1 {
		t.Fatalf("verdict counters wrong: %+v", snap)
	}
	if snap.DefaultDrops != 1 {
		t.Fatalf("DefaultDrops = %d, want 1", snap.DefaultDrops)
	}
	if snap.EntryHits[0] != 2 || snap.EntryHits[1] != 0 || snap.EntryHits[2] != 1 {
		t.Fatalf("entry hits wrong: %v", snap.EntryHits)
	}
	if snap.StateSizes["nat"] != 4 {
		t.Fatalf("state sizes wrong: %v", snap.StateSizes)
	}
	if snap.Packets != snap.Forwards+snap.Drops+snap.Errors {
		t.Fatalf("verdicts do not partition packets: %+v", snap)
	}
}

func TestSinkNil(t *testing.T) {
	var s *Sink
	t0 := s.Start()
	if !t0.IsZero() {
		t.Fatal("nil sink sampled a timestamp")
	}
	s.Count(t0, 0, false, false) // must not panic
	s.Reset()
	snap := s.Snapshot("compiled", nil)
	if snap.Packets != 0 {
		t.Fatalf("nil sink counted packets: %+v", snap)
	}
}

func TestSinkSampling(t *testing.T) {
	s := NewSink(1)
	s.SetSampleEvery(1)
	for i := 0; i < 10; i++ {
		t0 := s.Start()
		if t0.IsZero() {
			t.Fatalf("packet %d not sampled at SampleEvery(1)", i)
		}
		s.Count(t0, 0, false, false)
	}
	if s.lat.Samples != 10 {
		t.Fatalf("got %d latency samples, want 10", s.lat.Samples)
	}

	s = NewSink(1)
	s.SetSampleEvery(4)
	sampled := 0
	for i := 0; i < 16; i++ {
		if !s.Start().IsZero() {
			sampled++
		}
	}
	if sampled != 4 {
		t.Fatalf("got %d sampled of 16 at SampleEvery(4), want 4", sampled)
	}
}

func TestSinkReset(t *testing.T) {
	s := NewSink(2)
	s.SetSampleEvery(1)
	s.Count(s.Start(), 1, false, false)
	s.Reset()
	snap := s.Snapshot("model", nil)
	if snap.Packets != 0 || snap.EntryHits[1] != 0 || snap.Latency.Samples != 0 {
		t.Fatalf("reset left residue: %+v", snap)
	}
	if snap.SampleEvery != 1 {
		t.Fatalf("reset lost the sampling period: %d", snap.SampleEvery)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)   // bucket 0
	h.Observe(1)   // bucket 1: [1,2)
	h.Observe(100) // bucket 7: [64,128)
	h.Observe(127) // bucket 7
	h.Observe(-5)  // clamps to 0
	h.Observe(1 << 62)
	if h.Samples != 6 {
		t.Fatalf("samples = %d", h.Samples)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[7] != 2 || h.Counts[NumBuckets-1] != 1 {
		t.Fatalf("bucket layout wrong: %v", h.Counts)
	}
	if h.MaxNs != 1<<62 {
		t.Fatalf("max = %d", h.MaxNs)
	}
	if q := h.Quantile(0.5); q != BucketBound(1) && q != BucketBound(7) {
		t.Fatalf("median bound %d not near the mass", q)
	}
	if h.Quantile(1) != BucketBound(NumBuckets-1) {
		t.Fatalf("p100 = %d", h.Quantile(1))
	}
}

func TestHistogramAdd(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	b.Observe(1000)
	a.Add(b)
	if a.Samples != 2 || a.SumNs != 1010 || a.MaxNs != 1000 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

func TestSnapshotMergeAndEqual(t *testing.T) {
	a := Snapshot{Packets: 3, Forwards: 2, Drops: 1, EntryHits: []int64{2, 1},
		StateSizes: map[string]int{"m": 2}, Shards: 1}
	b := Snapshot{Packets: 1, Forwards: 1, EntryHits: []int64{0, 0, 1},
		StateSizes: map[string]int{"m": 1}, Shards: 1}
	m := a.Merge(b)
	if m.Packets != 4 || m.Forwards != 3 || m.Drops != 1 || m.Shards != 2 {
		t.Fatalf("merge counters wrong: %+v", m)
	}
	if len(m.EntryHits) != 3 || m.EntryHits[0] != 2 || m.EntryHits[2] != 1 {
		t.Fatalf("merge hits wrong: %v", m.EntryHits)
	}
	if m.StateSizes["m"] != 3 {
		t.Fatalf("merge sizes wrong: %v", m.StateSizes)
	}

	if !a.CountersEqual(a) {
		t.Fatal("snapshot not equal to itself")
	}
	// Trailing zero hits and latency/backend differences don't matter.
	c := a
	c.EntryHits = []int64{2, 1, 0}
	c.Backend = "sharded"
	c.Latency.Observe(5)
	if !a.CountersEqual(c) {
		t.Fatal("padding/latency/backend should not break equality")
	}
	c.EntryHits = []int64{2, 2}
	if a.CountersEqual(c) {
		t.Fatal("differing hits compared equal")
	}
}

func TestPacketTraceString(t *testing.T) {
	tr := &PacketTrace{
		Packet:  "1.1.1.1:10 > 2.2.2.2:80 tcp",
		Backend: "compiled",
		Entry:   1,
		Guards: []GuardEval{
			{Entry: 0, Guard: "pkt.dport == 23", Outcome: "false"},
			{Entry: 1, Guard: "pkt.dport == 80", Outcome: "true"},
		},
		Changes: []StateChange{
			{Var: "nat", Op: "set", Key: "(1.1.1.1, 10)", Val: "(3.3.3.3, 80)"},
			{Var: "rr_idx", Op: "assign", Val: "1"},
		},
		Sent: []string{"1.1.1.1:10 > 3.3.3.3:80 tcp"},
	}
	s := tr.String()
	for _, want := range []string{
		"entry 0:", "pkt.dport == 23", "= false",
		"entry 1 fired", "nat[(1.1.1.1, 10)] := (3.3.3.3, 80)",
		"rr_idx := 1", "verdict: FORWARD",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace missing %q:\n%s", want, s)
		}
	}

	drop := &PacketTrace{Packet: "p", Backend: "model", Entry: -1, Dropped: true}
	if !strings.Contains(drop.String(), "implicit default drop") {
		t.Fatalf("default-drop trace wrong:\n%s", drop.String())
	}
}

func TestDiffGuards(t *testing.T) {
	a := &PacketTrace{Backend: "instance", Guards: []GuardEval{
		{Entry: 0, Guard: "g0", Outcome: "false"},
		{Entry: 1, Guard: "g1", Outcome: "true"},
	}}
	b := &PacketTrace{Backend: "engine", Guards: []GuardEval{
		{Entry: 0, Guard: "g0", Outcome: "false"},
		{Entry: 1, Guard: "g1", Outcome: "false"},
	}}
	d := DiffGuards(a, b)
	if !strings.Contains(d, "entry 1") || !strings.Contains(d, "g1") {
		t.Fatalf("diff missed the disagreeing guard: %q", d)
	}
	if DiffGuards(a, a) != "" {
		t.Fatal("identical trails reported a diff")
	}
	// Structurally different trails (config guard folded away on one
	// side) with agreeing shared guards: no diff.
	c := &PacketTrace{Backend: "engine", Guards: []GuardEval{
		{Entry: 1, Guard: "g1", Outcome: "true"},
	}}
	if DiffGuards(a, c) != "" {
		t.Fatal("missing guards should be skipped, not diffed")
	}
}

func TestWritePrometheus(t *testing.T) {
	s := NewSink(2)
	s.SetSampleEvery(1)
	s.Count(s.Start(), 0, false, false)
	s.Count(s.Start(), -1, true, false)
	snap := s.Snapshot("compiled", map[string]int{"nat": 7})
	var sb strings.Builder
	if err := snap.WritePrometheus(&sb, "lb"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`nfactor_packets_total{nf="lb",backend="compiled"} 2`,
		`verdict="forward"} 1`,
		`verdict="drop"} 1`,
		`nfactor_entry_hits_total{nf="lb",backend="compiled",entry="0"} 1`,
		`nfactor_state_size{nf="lb",backend="compiled",var="nat"} 7`,
		`nfactor_latency_ns_count{nf="lb",backend="compiled"} 2`,
		`le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// Telemetry accounting itself must be allocation-free per packet.
func TestSinkZeroAlloc(t *testing.T) {
	s := NewSink(4)
	s.SetSampleEvery(1) // worst case: every packet takes both clock reads
	allocs := testing.AllocsPerRun(1000, func() {
		t0 := s.Start()
		s.Count(t0, 2, false, false)
	})
	if allocs != 0 {
		t.Fatalf("sink allocates %.1f/packet, want 0", allocs)
	}
}
