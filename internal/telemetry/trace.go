package telemetry

import (
	"fmt"
	"strings"
)

// GuardEval is one guard condition evaluated while matching a packet
// against the table: which entry it belongs to, the condition text, and
// what it evaluated to.
type GuardEval struct {
	Entry   int
	Guard   string
	Outcome string // "true", "false", or "error: ..."
}

// StateChange is one state transition committed by the fired entry.
type StateChange struct {
	Var string
	Op  string // "assign" (scalar or whole-map), "set" (map key), "del" (map key)
	Key string // map key for set/del, empty otherwise
	Val string // new value; empty for del
}

// PacketTrace is the provenance record of one packet: the full guard
// trail in table priority order, the entry that fired, the packets sent
// and the state transitions applied. Explain mode is the debugging
// surface — it allocates freely and is not meant for the hot path.
type PacketTrace struct {
	Packet  string
	Backend string
	// Entry is the model entry that fired; -1 for the implicit drop.
	Entry   int
	Dropped bool
	Err     string
	Guards  []GuardEval
	Changes []StateChange
	Sent    []string
}

// FiredGuards returns the guard evaluations of the entry that fired
// (empty for the implicit drop).
func (t *PacketTrace) FiredGuards() []GuardEval {
	var out []GuardEval
	for _, g := range t.Guards {
		if g.Entry == t.Entry {
			out = append(out, g)
		}
	}
	return out
}

// String renders the human-readable "why" trace.
func (t *PacketTrace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "why %s (%s):\n", t.Packet, t.Backend)
	last := -1
	for _, g := range t.Guards {
		if g.Entry != last {
			fmt.Fprintf(&sb, "  entry %d:\n", g.Entry)
			last = g.Entry
		}
		fmt.Fprintf(&sb, "    %-50s = %s\n", g.Guard, g.Outcome)
	}
	switch {
	case t.Err != "":
		fmt.Fprintf(&sb, "  => ERROR: %s\n", t.Err)
	case t.Entry < 0:
		sb.WriteString("  => no entry matched: implicit default drop\n")
	default:
		fmt.Fprintf(&sb, "  => entry %d fired\n", t.Entry)
	}
	for _, s := range t.Sent {
		fmt.Fprintf(&sb, "  sent: %s\n", s)
	}
	for _, ch := range t.Changes {
		switch ch.Op {
		case "set":
			fmt.Fprintf(&sb, "  state: %s[%s] := %s\n", ch.Var, ch.Key, ch.Val)
		case "del":
			fmt.Fprintf(&sb, "  state: delete %s[%s]\n", ch.Var, ch.Key)
		default:
			fmt.Fprintf(&sb, "  state: %s := %s\n", ch.Var, ch.Val)
		}
	}
	verdict := "FORWARD"
	if t.Err != "" {
		verdict = "ERROR"
	} else if t.Dropped {
		verdict = "DROP"
	}
	fmt.Fprintf(&sb, "  verdict: %s\n", verdict)
	return sb.String()
}

// DiffGuards compares two guard trails of the same model over the same
// packet and describes the first disagreement — the guard whose outcome
// differs between the two engines, the heart of the first-divergence
// report. Trails may differ structurally (one engine folds
// configuration guards away at compile time), so guards are matched by
// (entry, condition text); guards present on only one side are skipped.
// An empty string means every shared guard agreed (the divergence is in
// actions, not matching).
func DiffGuards(a, b *PacketTrace) string {
	type key struct {
		entry int
		guard string
	}
	bOut := map[key]string{}
	for _, g := range b.Guards {
		bOut[key{g.Entry, g.Guard}] = g.Outcome
	}
	for _, g := range a.Guards {
		if out, ok := bOut[key{g.Entry, g.Guard}]; ok && out != g.Outcome {
			return fmt.Sprintf("entry %d guard %s: %s=%s %s=%s",
				g.Entry, g.Guard, a.Backend, g.Outcome, b.Backend, out)
		}
	}
	return ""
}
