package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace-event (the JSON object format consumed
// by chrome://tracing and Perfetto). Spans become "X" complete events;
// counter samples become "C" counter events; lane names are "M" metadata.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds from the tracer epoch
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the object-form trace file: {"traceEvents": [...]}.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

func us(d int64) float64 { return float64(d) / 1e3 }

// WriteChrome exports the recorded spans and counter tracks as Chrome
// trace-event JSON. Span tree identity survives the flattening: every
// event's args carry the span id and parent id, so the exact exploration
// tree can be reconstructed from the file (the timeline view additionally
// groups spans by lane — tid 0 for pipeline phases, tid 1..N for symexec
// workers).
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: tracer is nil (tracing was not enabled)")
	}
	spans, counters := t.snapshot()
	doc := chromeDoc{DisplayTimeUnit: "ns"}
	tids := map[int]bool{}
	for _, sp := range spans {
		dur := us(int64(sp.dur))
		if sp.dur < 0 {
			dur = 0
		}
		args := map[string]any{"id": sp.id, "parent": sp.parent}
		for _, a := range sp.attrs {
			if a.IsInt {
				args[a.Key] = a.Int
			} else {
				args[a.Key] = a.Str
			}
		}
		tids[int(sp.tid)] = true
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: sp.name,
			Cat:  sp.cat,
			Ph:   "X",
			TS:   us(int64(sp.start)),
			Dur:  &dur,
			PID:  1,
			TID:  int(sp.tid),
			Args: args,
		})
	}
	for _, c := range counters {
		args := make(map[string]any, len(c.keys))
		for i, k := range c.keys {
			args[k] = c.vals[i]
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: c.name,
			Ph:   "C",
			TS:   us(int64(c.at)),
			PID:  1,
			TID:  0,
			Args: args,
		})
	}
	// Lane names, so Perfetto shows "pipeline" / "worker N" instead of
	// bare thread ids.
	lanes := make([]int, 0, len(tids))
	for tid := range tids {
		lanes = append(lanes, tid)
	}
	sort.Ints(lanes)
	for _, tid := range lanes {
		name := "pipeline"
		if tid > 0 {
			name = fmt.Sprintf("worker %d", tid)
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  1,
			TID:  tid,
			Args: map[string]any{"name": name},
		})
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Validate checks that data is well-formed Chrome trace-event JSON: an
// object with a non-empty traceEvents array whose events carry the fields
// each phase type requires. It is the CI trace-smoke gate for the files
// `nfactor -trace` writes.
func Validate(data []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace: no traceEvents")
	}
	num := func(ev map[string]any, key string) (float64, bool) {
		v, ok := ev[key].(float64)
		return v, ok
	}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if name == "" {
			return fmt.Errorf("trace: event %d: missing name", i)
		}
		if _, ok := num(ev, "pid"); !ok {
			return fmt.Errorf("trace: event %d (%s): missing pid", i, name)
		}
		if _, ok := num(ev, "tid"); !ok {
			return fmt.Errorf("trace: event %d (%s): missing tid", i, name)
		}
		switch ph {
		case "X":
			ts, ok := num(ev, "ts")
			if !ok || ts < 0 {
				return fmt.Errorf("trace: event %d (%s): complete event needs ts >= 0", i, name)
			}
			dur, ok := num(ev, "dur")
			if !ok || dur < 0 {
				return fmt.Errorf("trace: event %d (%s): complete event needs dur >= 0", i, name)
			}
		case "C", "i", "I":
			if _, ok := num(ev, "ts"); !ok {
				return fmt.Errorf("trace: event %d (%s): %s event needs ts", i, name, ph)
			}
		case "M":
			// Metadata events carry no timestamp.
		default:
			return fmt.Errorf("trace: event %d (%s): unsupported phase %q", i, name, ph)
		}
	}
	return nil
}
