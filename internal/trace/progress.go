package trace

import (
	"fmt"
	"io"
	"time"

	"nfactor/internal/perf"
)

// StartProgress launches a live reporter for a long synthesis run: every
// interval it prints one line with the symbolic-execution frontier depth,
// cumulative states/paths, the paths/sec rate over the last interval, and
// the solver-cache hit rate, all polled from ps's atomic counters (so the
// run itself is not perturbed). The returned stop function halts the
// reporter, prints a final line, and must be called exactly once.
func StartProgress(w io.Writer, ps *perf.Set, interval time.Duration) (stop func()) {
	if w == nil || ps == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		lastPaths := int64(0)
		lastAt := time.Now()
		line := func(final bool) {
			now := time.Now()
			paths := ps.Get(perf.CPaths)
			rate := float64(paths-lastPaths) / now.Sub(lastAt).Seconds()
			lastPaths, lastAt = paths, now
			hits := ps.Get(perf.CSatCacheHit) + ps.Get(perf.CSimpCacheHit)
			misses := ps.Get(perf.CSatCacheMiss) + ps.Get(perf.CSimpCacheMiss)
			cache := "n/a"
			if hits+misses > 0 {
				cache = fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
			}
			tag := "progress"
			if final {
				tag = "progress(final)"
			}
			fmt.Fprintf(w, "%s: frontier=%d states=%d paths=%d (%.0f/s) steps=%d solver-cache=%s\n",
				tag, ps.Get(perf.CFrontier), ps.Get(perf.CStates), paths, rate,
				ps.Get(perf.CSteps), cache)
		}
		for {
			select {
			case <-done:
				line(true)
				return
			case <-t.C:
				line(false)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
