// Package trace is the synthesis-pipeline tracer: an allocation-conscious
// span recorder threaded through core, slice, StateAlyzer, symexec,
// solver and model refinement, so a long or surprising synthesis run can
// be inspected instead of guessed at.
//
// The span tree mirrors Algorithm 1: one "phase" span per pipeline stage
// (packet slice, StateAlyzer, state slice, path enumeration, refinement),
// one "state" span per machine state the symbolic executor pops (i.e. per
// fork subtree, annotated with steps/solver-calls/prunes), and one
// "refine" span per synthesized table entry. The tree exports as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing, see
// WriteChrome) and as a human-readable indented dump (Tree).
//
// Everything is nil-safe: a nil *Tracer and the nil *Span it returns are
// no-ops, so instrumented hot paths need no branches beyond a nil check
// and tracing is strictly zero-cost when disabled. Phase spans started
// with StartPhase fold their measured duration into a perf.Set phase of
// the same name on End, so the trace and the perf report are two views of
// one measurement.
//
// Span creation takes one short mutex hold; span mutation (attributes,
// End) is owner-only and lock-free, which keeps the tracer safe under
// symexec's -workers > 1 without serializing the exploration.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nfactor/internal/perf"
)

// Span categories used by the pipeline. Packages may introduce others;
// these are the ones the synthesis pipeline always emits.
const (
	CatPipeline = "pipeline" // one root span per core.Analyze call
	CatPhase    = "phase"    // Algorithm 1 stages (slice.pkt, statealyzer, ...)
	CatState    = "state"    // one explored machine state / fork subtree
	CatRefine   = "refine"   // one synthesized table entry
)

// Attr is one span annotation (either a string or an int64 value).
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

func (a Attr) value() string {
	if a.IsInt {
		return fmt.Sprintf("%d", a.Int)
	}
	return a.Str
}

// Span is one recorded interval. A nil *Span (from a nil Tracer) is a
// no-op on every method.
type Span struct {
	tr     *Tracer
	id     int64
	parent int64
	cat    string
	name   string
	tid    int32
	start  time.Duration // offset from the tracer's epoch
	dur    time.Duration // -1 until End
	attrs  []Attr

	// Phase folding (StartPhase): on End the measured wall/CPU interval
	// is added to ps's phase of the same name.
	ps   *perf.Set
	cpu0 time.Duration
}

// ID returns the span's identifier (0 on a nil span; real IDs start at 1,
// so 0 doubles as the "root" parent).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetTID assigns the span to a display lane (worker index) in the Chrome
// trace. Nil-safe.
func (s *Span) SetTID(tid int) {
	if s != nil {
		s.tid = int32(tid)
	}
}

// SetInt attaches an integer annotation. Nil-safe.
func (s *Span) SetInt(key string, v int64) {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Int: v, IsInt: true})
	}
}

// SetStr attaches a string annotation. Nil-safe.
func (s *Span) SetStr(key, v string) {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Str: v})
	}
}

// End closes the span. For StartPhase spans the measured duration also
// folds into the attached perf.Set. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.dur = time.Since(s.tr.t0) - s.start
	if s.ps != nil {
		s.ps.AddPhase(s.name, s.dur, perf.CPUTime()-s.cpu0)
	}
}

// counterSample is one point on a Chrome counter track (ph "C").
type counterSample struct {
	name string
	at   time.Duration
	keys []string
	vals []int64
}

// Tracer collects spans and counter samples for one pipeline run.
type Tracer struct {
	t0     time.Time
	nextID atomic.Int64

	mu       sync.Mutex
	spans    []*Span
	counters []counterSample
}

// New returns an empty tracer whose epoch is now.
func New() *Tracer { return &Tracer{t0: time.Now()} }

// Enabled reports whether t records anything (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Start opens a span under parent (0 = root). Nil-safe: returns nil on a
// nil tracer, and nil *Span methods are no-ops — callers on hot paths
// should still guard with `if tracer != nil` to avoid building names.
func (t *Tracer) Start(cat, name string, parent int64) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{
		tr:     t,
		id:     t.nextID.Add(1),
		parent: parent,
		cat:    cat,
		name:   name,
		start:  time.Since(t.t0),
		dur:    -1,
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// StartPhase opens a CatPhase span that, on End, folds its measured
// wall/CPU duration into ps's phase of the same name — the single-
// measurement guarantee that keeps `-trace` and `-stats` consistent.
func (t *Tracer) StartPhase(name string, parent int64, ps *perf.Set) *Span {
	sp := t.Start(CatPhase, name, parent)
	if sp != nil {
		sp.ps = ps
		sp.cpu0 = perf.CPUTime()
	}
	return sp
}

// Counter records one sample on the named Chrome counter track (for
// example the solver cache's cumulative hit/miss counts). Nil-safe.
func (t *Tracer) Counter(name string, vals map[string]int64) {
	if t == nil {
		return
	}
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vs := make([]int64, len(keys))
	for i, k := range keys {
		vs[i] = vals[k]
	}
	sample := counterSample{name: name, at: time.Since(t.t0), keys: keys, vals: vs}
	t.mu.Lock()
	t.counters = append(t.counters, sample)
	t.mu.Unlock()
}

// SpanCount returns the number of recorded spans. Nil-safe.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// snapshot copies the span and counter slices. Callers mutate nothing.
func (t *Tracer) snapshot() ([]*Span, []counterSample) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span{}, t.spans...), append([]counterSample{}, t.counters...)
}

// Tree renders the span forest as an indented dump. With withTimes the
// children sort by start time and durations are printed; without, the
// rendering is canonical — children sort by (category, name) and all
// scheduling-dependent detail (timestamps, durations, worker lanes) is
// omitted, so two runs of the same exploration produce byte-identical
// trees regardless of worker count (the determinism regression relies on
// this).
func (t *Tracer) Tree(withTimes bool) string {
	if t == nil {
		return ""
	}
	spans, _ := t.snapshot()
	children := map[int64][]*Span{}
	for _, sp := range spans {
		children[sp.parent] = append(children[sp.parent], sp)
	}
	for _, cs := range children {
		sort.Slice(cs, func(a, b int) bool {
			if withTimes {
				if cs[a].start != cs[b].start {
					return cs[a].start < cs[b].start
				}
				return cs[a].id < cs[b].id
			}
			if cs[a].cat != cs[b].cat {
				return cs[a].cat < cs[b].cat
			}
			if cs[a].name != cs[b].name {
				return cs[a].name < cs[b].name
			}
			return cs[a].id < cs[b].id
		})
	}
	var sb strings.Builder
	var walk func(parent int64, depth int)
	walk = func(parent int64, depth int) {
		for _, sp := range children[parent] {
			for i := 0; i < depth; i++ {
				sb.WriteString("  ")
			}
			sb.WriteString(sp.cat)
			sb.WriteByte(' ')
			sb.WriteString(sp.name)
			for _, a := range sp.attrs {
				sb.WriteByte(' ')
				sb.WriteString(a.Key)
				sb.WriteByte('=')
				sb.WriteString(a.value())
			}
			if withTimes && sp.dur >= 0 {
				fmt.Fprintf(&sb, " (%v)", sp.dur.Round(time.Microsecond))
			}
			sb.WriteByte('\n')
			walk(sp.id, depth+1)
		}
	}
	walk(0, 0)
	return sb.String()
}
