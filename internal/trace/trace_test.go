package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"nfactor/internal/perf"
)

func TestSpanTreeAndChromeExport(t *testing.T) {
	tr := New()
	root := tr.Start(CatPipeline, "nat", 0)
	ph := tr.Start(CatPhase, "se.slice", root.ID())
	st := tr.Start(CatState, "root", ph.ID())
	st.SetTID(1)
	st.SetInt("steps", 12)
	st.SetStr("path", "0.1")
	st.End()
	ph.End()
	tr.Counter("solver.cache", map[string]int64{"sat_hits": 3, "sat_misses": 1})
	root.End()

	if got := tr.SpanCount(); got != 3 {
		t.Fatalf("SpanCount = %d, want 3", got)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("Validate: %v\n%s", err, buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// 3 spans + 1 counter + lane metadata (tid 0 and tid 1).
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6:\n%s", len(doc.TraceEvents), buf.String())
	}

	tree := tr.Tree(false)
	want := "pipeline nat\n  phase se.slice\n    state root steps=12 path=0.1\n"
	if tree != want {
		t.Fatalf("canonical tree:\n%q\nwant:\n%q", tree, want)
	}
	timed := tr.Tree(true)
	if !strings.Contains(timed, "(") {
		t.Fatalf("timed tree missing durations:\n%s", timed)
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`not json`,
		`{"traceEvents": []}`,
		`{"traceEvents": [{"ph":"X","name":"a","pid":1,"tid":0,"ts":-1,"dur":2}]}`,
		`{"traceEvents": [{"ph":"X","name":"a","pid":1,"tid":0,"ts":1}]}`,
		`{"traceEvents": [{"ph":"Q","name":"a","pid":1,"tid":0,"ts":1}]}`,
		`{"traceEvents": [{"ph":"X","pid":1,"tid":0,"ts":1,"dur":1}]}`,
	} {
		if err := Validate([]byte(bad)); err == nil {
			t.Errorf("Validate accepted %s", bad)
		}
	}
}

func TestNilTracerIsNoOpAndAllocFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Tree(true) != "" || tr.SpanCount() != 0 {
		t.Fatal("nil tracer returned data")
	}
	if err := tr.WriteChrome(&bytes.Buffer{}); err == nil {
		t.Fatal("nil tracer WriteChrome succeeded")
	}
	// The disabled-tracer fast path the pipeline leaves in hot loops:
	// Start/annotate/End on a nil tracer must allocate nothing.
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(CatState, "s", 0)
		sp.SetTID(1)
		sp.SetInt("steps", 1)
		sp.SetStr("path", "x")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer span ops allocate %.1f allocs/op, want 0", allocs)
	}
}

func TestStartPhaseFoldsIntoPerf(t *testing.T) {
	tr := New()
	ps := perf.New()
	sp := tr.StartPhase("se.slice", 0, ps)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	wall := ps.PhaseWall("se.slice")
	if wall <= 0 {
		t.Fatalf("phase wall not folded: %v", wall)
	}
	// The span duration and the folded phase duration are the SAME
	// measurement, not two clock reads.
	if sp.dur != wall {
		t.Fatalf("span dur %v != perf phase wall %v", sp.dur, wall)
	}
	doc := ps.JSON()
	if doc.Phases["se.slice"].Calls != 1 {
		t.Fatalf("phase calls = %d, want 1", doc.Phases["se.slice"].Calls)
	}
}

func TestProgressReporter(t *testing.T) {
	ps := perf.New()
	ps.Counter(perf.CPaths).Add(7)
	ps.Counter(perf.CFrontier).Add(3)
	ps.Counter(perf.CSatCacheHit).Add(9)
	ps.Counter(perf.CSatCacheMiss).Add(1)
	var buf bytes.Buffer
	stop := StartProgress(&buf, ps, 5*time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	stop()
	out := buf.String()
	if !strings.Contains(out, "frontier=3") || !strings.Contains(out, "paths=7") {
		t.Fatalf("progress output missing gauges:\n%s", out)
	}
	if !strings.Contains(out, "solver-cache=90.0%") {
		t.Fatalf("progress output missing cache rate:\n%s", out)
	}
	if !strings.Contains(out, "progress(final)") {
		t.Fatalf("progress output missing final line:\n%s", out)
	}
	// stop() is sync: nothing may write after it returns.
	n := buf.Len()
	time.Sleep(15 * time.Millisecond)
	if buf.Len() != n {
		t.Fatal("reporter wrote after stop")
	}
}
