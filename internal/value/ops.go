package value

import "fmt"

// BinOp applies the NFLang binary operator op to concrete operands.
// It is the single source of truth for operator semantics: the concrete
// interpreter calls it directly and the symbolic executor calls it when
// both operands fold to constants.
//
// The "in" operator (map membership) is handled by the callers because it
// needs the map reference, not a value copy.
func BinOp(op string, a, b Value) (Value, error) {
	switch op {
	case "+":
		if a.Kind == KindInt && b.Kind == KindInt {
			return Int(a.I + b.I), nil
		}
		if a.Kind == KindStr && b.Kind == KindStr {
			return Str(a.S + b.S), nil
		}
		return Value{}, typeErr(op, a, b)
	case "-", "*", "/", "%":
		if a.Kind != KindInt || b.Kind != KindInt {
			return Value{}, typeErr(op, a, b)
		}
		switch op {
		case "-":
			return Int(a.I - b.I), nil
		case "*":
			return Int(a.I * b.I), nil
		case "/":
			if b.I == 0 {
				return Value{}, fmt.Errorf("division by zero")
			}
			return Int(a.I / b.I), nil
		default:
			if b.I == 0 {
				return Value{}, fmt.Errorf("modulo by zero")
			}
			m := a.I % b.I
			if m < 0 {
				m += abs64(b.I)
			}
			return Int(m), nil
		}
	case "==":
		return Bool(Equal(a, b)), nil
	case "!=":
		return Bool(!Equal(a, b)), nil
	case "<", "<=", ">", ">=":
		c, err := compare(a, b)
		if err != nil {
			return Value{}, fmt.Errorf("%s: %w", op, err)
		}
		switch op {
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case "&&":
		if a.Kind != KindBool || b.Kind != KindBool {
			return Value{}, typeErr(op, a, b)
		}
		return Bool(a.B && b.B), nil
	case "||":
		if a.Kind != KindBool || b.Kind != KindBool {
			return Value{}, typeErr(op, a, b)
		}
		return Bool(a.B || b.B), nil
	default:
		return Value{}, fmt.Errorf("unknown binary operator %q", op)
	}
}

// UnOp applies a unary operator to a concrete operand.
func UnOp(op string, a Value) (Value, error) {
	switch op {
	case "-":
		if a.Kind != KindInt {
			return Value{}, fmt.Errorf("unary - on %s", a.Kind)
		}
		return Int(-a.I), nil
	case "!":
		if a.Kind != KindBool {
			return Value{}, fmt.Errorf("unary ! on %s", a.Kind)
		}
		return Bool(!a.B), nil
	default:
		return Value{}, fmt.Errorf("unknown unary operator %q", op)
	}
}

// Index evaluates container[idx] for tuples, lists, maps and packets.
func Index(container, idx Value) (Value, error) {
	switch container.Kind {
	case KindTuple:
		i, err := sliceIndex(idx, len(container.Tuple))
		if err != nil {
			return Value{}, err
		}
		return container.Tuple[i], nil
	case KindList:
		i, err := sliceIndex(idx, len(container.List.Elems))
		if err != nil {
			return Value{}, err
		}
		return container.List.Elems[i], nil
	case KindMap:
		v, ok, err := container.Map.Get(idx)
		if err != nil {
			return Value{}, err
		}
		if !ok {
			return Value{}, fmt.Errorf("map key %s not present", idx)
		}
		return v, nil
	case KindPacket:
		if idx.Kind != KindStr {
			return Value{}, fmt.Errorf("packet field index must be string, got %s", idx.Kind)
		}
		f, ok := container.Pkt.Fields[idx.S]
		if !ok {
			return Value{}, fmt.Errorf("packet has no field %q", idx.S)
		}
		return f, nil
	default:
		return Value{}, fmt.Errorf("cannot index %s", container.Kind)
	}
}

// SetIndex evaluates container[idx] = v for lists, maps and packets.
func SetIndex(container, idx, v Value) error {
	switch container.Kind {
	case KindList:
		i, err := sliceIndex(idx, len(container.List.Elems))
		if err != nil {
			return err
		}
		container.List.Elems[i] = v
		return nil
	case KindMap:
		return container.Map.Set(idx, v)
	case KindPacket:
		if idx.Kind != KindStr {
			return fmt.Errorf("packet field index must be string, got %s", idx.Kind)
		}
		container.Pkt.Fields[idx.S] = v
		return nil
	default:
		return fmt.Errorf("cannot assign into %s", container.Kind)
	}
}

func sliceIndex(idx Value, n int) (int, error) {
	if idx.Kind != KindInt {
		return 0, fmt.Errorf("index must be int, got %s", idx.Kind)
	}
	i := int(idx.I)
	if i < 0 || i >= n {
		return 0, fmt.Errorf("index %d out of range [0,%d)", i, n)
	}
	return i, nil
}

func compare(a, b Value) (int, error) {
	if a.Kind == KindInt && b.Kind == KindInt {
		switch {
		case a.I < b.I:
			return -1, nil
		case a.I > b.I:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.Kind == KindStr && b.Kind == KindStr {
		switch {
		case a.S < b.S:
			return -1, nil
		case a.S > b.S:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, fmt.Errorf("cannot order %s and %s", a.Kind, b.Kind)
}

func typeErr(op string, a, b Value) error {
	return fmt.Errorf("operator %s on %s and %s", op, a.Kind, b.Kind)
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
