package value

import (
	"testing"
	"testing/quick"
)

func TestBinOpArithmetic(t *testing.T) {
	cases := []struct {
		op   string
		a, b int64
		want int64
	}{
		{"+", 2, 3, 5},
		{"-", 2, 3, -1},
		{"*", 4, 3, 12},
		{"/", 7, 2, 3},
		{"%", 7, 3, 1},
		{"%", -1, 3, 2}, // NFLang % is non-negative for positive modulus
	}
	for _, c := range cases {
		got, err := BinOp(c.op, Int(c.a), Int(c.b))
		if err != nil {
			t.Fatalf("%d %s %d: %v", c.a, c.op, c.b, err)
		}
		if got.I != c.want {
			t.Errorf("%d %s %d = %d, want %d", c.a, c.op, c.b, got.I, c.want)
		}
	}
}

func TestBinOpDivZero(t *testing.T) {
	if _, err := BinOp("/", Int(1), Int(0)); err == nil {
		t.Error("division by zero did not error")
	}
	if _, err := BinOp("%", Int(1), Int(0)); err == nil {
		t.Error("modulo by zero did not error")
	}
}

func TestBinOpStrings(t *testing.T) {
	got, err := BinOp("+", Str("a"), Str("b"))
	if err != nil || got.S != "ab" {
		t.Errorf("a+b = %v, %v", got, err)
	}
	lt, _ := BinOp("<", Str("a"), Str("b"))
	if !lt.B {
		t.Error(`"a" < "b" was false`)
	}
	if _, err := BinOp("-", Str("a"), Str("b")); err == nil {
		t.Error("string subtraction did not error")
	}
}

func TestBinOpComparisons(t *testing.T) {
	eq, _ := BinOp("==", TupleOf(Int(1), Str("x")), TupleOf(Int(1), Str("x")))
	if !eq.B {
		t.Error("tuple equality false")
	}
	ne, _ := BinOp("!=", Int(1), Int(2))
	if !ne.B {
		t.Error("1 != 2 was false")
	}
	if _, err := BinOp("<", Int(1), Str("a")); err == nil {
		t.Error("cross-kind ordering did not error")
	}
	// == across kinds is false, not an error (NFLang equality is total).
	xe, err := BinOp("==", Int(1), Str("1"))
	if err != nil || xe.B {
		t.Errorf("1 == \"1\" = %v, %v", xe, err)
	}
}

func TestBinOpBool(t *testing.T) {
	v, err := BinOp("&&", Bool(true), Bool(false))
	if err != nil || v.B {
		t.Errorf("true && false = %v, %v", v, err)
	}
	v, err = BinOp("||", Bool(true), Bool(false))
	if err != nil || !v.B {
		t.Errorf("true || false = %v, %v", v, err)
	}
	if _, err := BinOp("&&", Int(1), Bool(true)); err == nil {
		t.Error("&& on int did not error")
	}
}

func TestUnOp(t *testing.T) {
	v, err := UnOp("-", Int(5))
	if err != nil || v.I != -5 {
		t.Errorf("-5 = %v, %v", v, err)
	}
	v, err = UnOp("!", Bool(false))
	if err != nil || !v.B {
		t.Errorf("!false = %v, %v", v, err)
	}
	if _, err := UnOp("!", Int(1)); err == nil {
		t.Error("!int did not error")
	}
}

func TestIndex(t *testing.T) {
	tup := TupleOf(Str("1.1.1.1"), Int(80))
	v, err := Index(tup, Int(1))
	if err != nil || v.I != 80 {
		t.Errorf("tuple[1] = %v, %v", v, err)
	}
	if _, err := Index(tup, Int(2)); err == nil {
		t.Error("tuple index out of range did not error")
	}
	lst := NewList(Int(10), Int(20))
	v, err = Index(lst, Int(0))
	if err != nil || v.I != 10 {
		t.Errorf("list[0] = %v, %v", v, err)
	}
	m := NewMap()
	_ = m.Map.Set(Str("k"), Int(9))
	v, err = Index(m, Str("k"))
	if err != nil || v.I != 9 {
		t.Errorf("map[k] = %v, %v", v, err)
	}
	if _, err := Index(m, Str("absent")); err == nil {
		t.Error("absent map key did not error")
	}
	pkt := NewPacket(map[string]Value{"sport": Int(1234)})
	v, err = Index(pkt, Str("sport"))
	if err != nil || v.I != 1234 {
		t.Errorf("pkt[sport] = %v, %v", v, err)
	}
}

func TestSetIndex(t *testing.T) {
	lst := NewList(Int(1), Int(2))
	if err := SetIndex(lst, Int(1), Int(99)); err != nil {
		t.Fatal(err)
	}
	if lst.List.Elems[1].I != 99 {
		t.Error("list store did not take")
	}
	m := NewMap()
	if err := SetIndex(m, TupleOf(Int(1), Int(2)), Str("v")); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := m.Map.Get(TupleOf(Int(1), Int(2)))
	if !ok || got.S != "v" {
		t.Error("map store did not take")
	}
	pkt := NewPacket(nil)
	if err := SetIndex(pkt, Str("ttl"), Int(64)); err != nil {
		t.Fatal(err)
	}
	if pkt.Pkt.Fields["ttl"].I != 64 {
		t.Error("packet field store did not take")
	}
	if err := SetIndex(TupleOf(Int(1)), Int(0), Int(2)); err == nil {
		t.Error("tuple store did not error (tuples are immutable)")
	}
}

// Property: modulo result is always in [0, m) for positive m.
func TestModuloRangeProperty(t *testing.T) {
	f := func(a int64, m uint8) bool {
		mod := int64(m%31) + 1
		v, err := BinOp("%", Int(a), Int(mod))
		return err == nil && v.I >= 0 && v.I < mod
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: (a+b)-b == a over ints.
func TestAddSubInverseProperty(t *testing.T) {
	f := func(a, b int32) bool {
		s, err := BinOp("+", Int(int64(a)), Int(int64(b)))
		if err != nil {
			return false
		}
		d, err := BinOp("-", s, Int(int64(b)))
		return err == nil && d.I == int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
