package value

import "testing"

func TestStringRendering(t *testing.T) {
	m := NewMap()
	_ = m.Map.Set(Str("k"), Int(1))
	cases := []struct {
		v    Value
		want string
	}{
		{Nil(), "nil"},
		{Int(-3), "-3"},
		{Str("a\"b"), `"a\"b"`},
		{Bool(false), "false"},
		{TupleOf(Int(1), Str("x")), `(1, "x")`},
		{NewList(Int(1), Int(2)), "[1, 2]"},
		{m, `{"k": 1}`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind, got, c.want)
		}
	}
	// Packet rendering sorts field names deterministically.
	p := NewPacket(map[string]Value{"b": Int(2), "a": Int(1)})
	if got := p.String(); got != "pkt{a=1 b=2}" {
		t.Errorf("packet string = %q", got)
	}
}

func TestEqualAcrossAllKinds(t *testing.T) {
	m1 := NewMap()
	_ = m1.Map.Set(Int(1), Str("a"))
	m2 := NewMap()
	_ = m2.Map.Set(Int(1), Str("a"))
	m3 := NewMap()
	_ = m3.Map.Set(Int(1), Str("b"))
	m4 := NewMap()
	_ = m4.Map.Set(Int(2), Str("a"))

	p1 := NewPacket(map[string]Value{"x": Int(1)})
	p2 := NewPacket(map[string]Value{"x": Int(1)})
	p3 := NewPacket(map[string]Value{"x": Int(2)})
	p4 := NewPacket(map[string]Value{"y": Int(1)})

	eq := [][2]Value{
		{Nil(), Nil()},
		{Bool(true), Bool(true)},
		{NewList(Int(1)), NewList(Int(1))},
		{m1, m2},
		{p1, p2},
	}
	for i, c := range eq {
		if !Equal(c[0], c[1]) {
			t.Errorf("eq case %d: %s != %s", i, c[0], c[1])
		}
	}
	ne := [][2]Value{
		{Nil(), Int(0)},
		{Bool(true), Bool(false)},
		{NewList(Int(1)), NewList(Int(2))},
		{NewList(Int(1)), NewList(Int(1), Int(2))},
		{m1, m3},
		{m1, m4},
		{p1, p3},
		{p1, p4},
		{Str("a"), Int(1)},
	}
	for i, c := range ne {
		if Equal(c[0], c[1]) {
			t.Errorf("ne case %d: %s == %s", i, c[0], c[1])
		}
	}
}

func TestCompareOrderings(t *testing.T) {
	// string ordering through BinOp
	for _, c := range []struct {
		op   string
		a, b Value
		want bool
	}{
		{">", Str("b"), Str("a"), true},
		{">=", Str("a"), Str("a"), true},
		{"<=", Int(-5), Int(5), true},
		{">", Int(3), Int(3), false},
	} {
		got, err := BinOp(c.op, c.a, c.b)
		if err != nil || got.B != c.want {
			t.Errorf("%s %s %s = %v, %v", c.a, c.op, c.b, got, err)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNil: "nil", KindInt: "int", KindStr: "string", KindBool: "bool",
		KindTuple: "tuple", KindList: "list", KindMap: "map", KindPacket: "packet",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestModuloNegativeModulus(t *testing.T) {
	// NFLang % with a negative modulus still yields a value in range.
	v, err := BinOp("%", Int(-7), Int(-3))
	if err != nil {
		t.Fatal(err)
	}
	if v.I < 0 {
		t.Errorf("-7 %% -3 = %d, want non-negative", v.I)
	}
}

func TestHashOfTuples(t *testing.T) {
	a, err := Hash(TupleOf(Str("a"), Int(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Hash(TupleOf(Str("a"), Int(2)))
	if a == b {
		t.Error("tuple hash collision on near inputs")
	}
}
