// Package value defines the dynamic values manipulated by NFLang programs.
//
// A single Value type is shared by the concrete interpreter
// (internal/interp), the constraint solver (internal/solver), the symbolic
// executor (internal/symexec) and the model interpreter (internal/model),
// so that constant folding in the symbolic executor and concrete execution
// agree bit-for-bit — a requirement for the paper's differential-testing
// accuracy methodology (§5).
package value

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Kind enumerates the dynamic types of NFLang.
type Kind int

// The NFLang value kinds.
const (
	KindNil Kind = iota
	KindInt
	KindStr
	KindBool
	KindTuple
	KindList
	KindMap
	KindPacket
)

// String returns the NFLang name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindInt:
		return "int"
	case KindStr:
		return "string"
	case KindBool:
		return "bool"
	case KindTuple:
		return "tuple"
	case KindList:
		return "list"
	case KindMap:
		return "map"
	case KindPacket:
		return "packet"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is a dynamically typed NFLang value. The zero Value is nil.
//
// Tuples are immutable; lists and maps are reference types (mutations are
// visible through every Value holding the same pointer), mirroring the
// semantics of the Python-like NF code in the paper's Figure 1.
type Value struct {
	Kind  Kind
	I     int64
	S     string
	B     bool
	Tuple []Value
	List  *ListVal
	Map   *MapVal
	Pkt   *PacketVal
}

// ListVal is the shared storage of a list value.
type ListVal struct {
	Elems []Value
}

// MapVal is the shared storage of a map (dict) value. Keys are stored by
// their canonical encoding so that tuples can be used as keys, exactly as
// the load balancer in the paper keys its NAT dictionaries by 4-tuples.
type MapVal struct {
	entries map[string]mapEntry
}

type mapEntry struct {
	key Value
	val Value
}

// PacketVal is the interpreter-level view of a packet: a bag of named
// header fields. internal/netpkt converts wire packets to and from this
// representation.
type PacketVal struct {
	Fields map[string]Value
}

// Nil returns the nil value.
func Nil() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindStr, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// TupleOf returns a tuple value of the given elements.
func TupleOf(elems ...Value) Value { return Value{Kind: KindTuple, Tuple: elems} }

// NewList returns a fresh list value holding elems.
func NewList(elems ...Value) Value {
	return Value{Kind: KindList, List: &ListVal{Elems: elems}}
}

// NewMap returns a fresh empty map value.
func NewMap() Value {
	return Value{Kind: KindMap, Map: &MapVal{entries: make(map[string]mapEntry)}}
}

// NewPacket returns a fresh packet value with the given fields.
func NewPacket(fields map[string]Value) Value {
	if fields == nil {
		fields = make(map[string]Value)
	}
	return Value{Kind: KindPacket, Pkt: &PacketVal{Fields: fields}}
}

// IsTruthy reports whether v counts as true in a condition. Only booleans
// are permitted in NFLang conditions; other kinds report an error.
func (v Value) IsTruthy() (bool, error) {
	if v.Kind != KindBool {
		return false, fmt.Errorf("condition is %s, want bool", v.Kind)
	}
	return v.B, nil
}

// Len returns the length of a string, tuple, list or map.
func (v Value) Len() (int, error) {
	switch v.Kind {
	case KindStr:
		return len(v.S), nil
	case KindTuple:
		return len(v.Tuple), nil
	case KindList:
		return len(v.List.Elems), nil
	case KindMap:
		return len(v.Map.entries), nil
	default:
		return 0, fmt.Errorf("len of %s", v.Kind)
	}
}

// Key returns the canonical encoding of v for use as a map key.
// Only hashable kinds (int, string, bool, tuples thereof) are encodable.
func (v Value) Key() (string, error) {
	var sb strings.Builder
	if err := encodeKey(&sb, v); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func encodeKey(sb *strings.Builder, v Value) error {
	switch v.Kind {
	case KindInt:
		fmt.Fprintf(sb, "i%d;", v.I)
	case KindStr:
		fmt.Fprintf(sb, "s%d:%s;", len(v.S), v.S)
	case KindBool:
		fmt.Fprintf(sb, "b%v;", v.B)
	case KindNil:
		sb.WriteString("n;")
	case KindTuple:
		fmt.Fprintf(sb, "t%d(", len(v.Tuple))
		for _, e := range v.Tuple {
			if err := encodeKey(sb, e); err != nil {
				return err
			}
		}
		sb.WriteString(")")
	default:
		return fmt.Errorf("unhashable map key kind %s", v.Kind)
	}
	return nil
}

// Get looks up k in the map, reporting presence.
func (m *MapVal) Get(k Value) (Value, bool, error) {
	key, err := k.Key()
	if err != nil {
		return Value{}, false, err
	}
	e, ok := m.entries[key]
	return e.val, ok, nil
}

// Set stores k→v in the map.
func (m *MapVal) Set(k, v Value) error {
	key, err := k.Key()
	if err != nil {
		return err
	}
	if m.entries == nil {
		m.entries = make(map[string]mapEntry)
	}
	m.entries[key] = mapEntry{key: k, val: v}
	return nil
}

// Delete removes k from the map (no-op when absent).
func (m *MapVal) Delete(k Value) error {
	key, err := k.Key()
	if err != nil {
		return err
	}
	delete(m.entries, key)
	return nil
}

// Len returns the number of entries.
func (m *MapVal) Len() int { return len(m.entries) }

// Keys returns the map keys in canonical (sorted) order, for deterministic
// iteration and printing.
func (m *MapVal) Keys() []Value {
	enc := make([]string, 0, len(m.entries))
	for k := range m.entries {
		enc = append(enc, k)
	}
	sort.Strings(enc)
	out := make([]Value, len(enc))
	for i, k := range enc {
		out[i] = m.entries[k].key
	}
	return out
}

// Clone returns a deep copy of v. Lists, maps and packets are copied;
// tuples are immutable and shared.
func (v Value) Clone() Value {
	switch v.Kind {
	case KindList:
		elems := make([]Value, len(v.List.Elems))
		for i, e := range v.List.Elems {
			elems[i] = e.Clone()
		}
		return NewList(elems...)
	case KindMap:
		out := NewMap()
		for _, k := range v.Map.Keys() {
			val, _, _ := v.Map.Get(k)
			_ = out.Map.Set(k, val.Clone())
		}
		return out
	case KindPacket:
		fields := make(map[string]Value, len(v.Pkt.Fields))
		for name, f := range v.Pkt.Fields {
			fields[name] = f.Clone()
		}
		return NewPacket(fields)
	default:
		return v
	}
}

// Equal reports deep structural equality of a and b.
func Equal(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindNil:
		return true
	case KindInt:
		return a.I == b.I
	case KindStr:
		return a.S == b.S
	case KindBool:
		return a.B == b.B
	case KindTuple:
		if len(a.Tuple) != len(b.Tuple) {
			return false
		}
		for i := range a.Tuple {
			if !Equal(a.Tuple[i], b.Tuple[i]) {
				return false
			}
		}
		return true
	case KindList:
		if len(a.List.Elems) != len(b.List.Elems) {
			return false
		}
		for i := range a.List.Elems {
			if !Equal(a.List.Elems[i], b.List.Elems[i]) {
				return false
			}
		}
		return true
	case KindMap:
		if a.Map.Len() != b.Map.Len() {
			return false
		}
		for _, k := range a.Map.Keys() {
			av, _, _ := a.Map.Get(k)
			bv, ok, err := b.Map.Get(k)
			if err != nil || !ok || !Equal(av, bv) {
				return false
			}
		}
		return true
	case KindPacket:
		if len(a.Pkt.Fields) != len(b.Pkt.Fields) {
			return false
		}
		for name, av := range a.Pkt.Fields {
			bv, ok := b.Pkt.Fields[name]
			if !ok || !Equal(av, bv) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders v as NFLang source text (round-trippable for scalars,
// tuples and lists).
func (v Value) String() string {
	switch v.Kind {
	case KindNil:
		return "nil"
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindStr:
		return fmt.Sprintf("%q", v.S)
	case KindBool:
		return fmt.Sprintf("%v", v.B)
	case KindTuple:
		parts := make([]string, len(v.Tuple))
		for i, e := range v.Tuple {
			parts[i] = e.String()
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case KindList:
		parts := make([]string, len(v.List.Elems))
		for i, e := range v.List.Elems {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case KindMap:
		keys := v.Map.Keys()
		parts := make([]string, len(keys))
		for i, k := range keys {
			val, _, _ := v.Map.Get(k)
			parts[i] = k.String() + ": " + val.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case KindPacket:
		names := make([]string, 0, len(v.Pkt.Fields))
		for name := range v.Pkt.Fields {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = name + "=" + v.Pkt.Fields[name].String()
		}
		return "pkt{" + strings.Join(parts, " ") + "}"
	}
	return "?"
}

// Hash is the deterministic NFLang hash builtin (FNV-1a over the canonical
// key encoding). It is shared by the concrete interpreter and the model
// interpreter so hash-mode load balancing agrees on both sides.
func Hash(v Value) (int64, error) {
	key, err := v.Key()
	if err != nil {
		return 0, fmt.Errorf("hash: %w", err)
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return int64(h.Sum64() & 0x7fffffffffffffff), nil
}
