package value

import (
	"testing"
	"testing/quick"
)

func TestScalarConstructors(t *testing.T) {
	if v := Int(42); v.Kind != KindInt || v.I != 42 {
		t.Errorf("Int(42) = %v", v)
	}
	if v := Str("x"); v.Kind != KindStr || v.S != "x" {
		t.Errorf("Str = %v", v)
	}
	if v := Bool(true); v.Kind != KindBool || !v.B {
		t.Errorf("Bool = %v", v)
	}
	if v := Nil(); v.Kind != KindNil {
		t.Errorf("Nil = %v", v)
	}
}

func TestTupleEquality(t *testing.T) {
	a := TupleOf(Int(1), Str("a"))
	b := TupleOf(Int(1), Str("a"))
	c := TupleOf(Int(1), Str("b"))
	if !Equal(a, b) {
		t.Error("equal tuples not Equal")
	}
	if Equal(a, c) {
		t.Error("different tuples Equal")
	}
	if Equal(a, TupleOf(Int(1))) {
		t.Error("tuples of different length Equal")
	}
}

func TestMapTupleKeys(t *testing.T) {
	m := NewMap()
	k1 := TupleOf(Str("1.1.1.1"), Int(80), Str("2.2.2.2"), Int(1234))
	k2 := TupleOf(Str("1.1.1.1"), Int(80), Str("2.2.2.2"), Int(1235))
	if err := m.Map.Set(k1, Int(7)); err != nil {
		t.Fatal(err)
	}
	v, ok, err := m.Map.Get(k1)
	if err != nil || !ok || v.I != 7 {
		t.Fatalf("Get(k1) = %v %v %v", v, ok, err)
	}
	if _, ok, _ := m.Map.Get(k2); ok {
		t.Error("Get(k2) found a value stored under k1")
	}
	// Structurally equal key constructed separately still hits.
	k1b := TupleOf(Str("1.1.1.1"), Int(80), Str("2.2.2.2"), Int(1234))
	if _, ok, _ := m.Map.Get(k1b); !ok {
		t.Error("structurally equal tuple key missed")
	}
}

func TestMapKeyEncodingInjective(t *testing.T) {
	// Nested tuples and strings with separators must not collide.
	pairs := [][2]Value{
		{TupleOf(Str("a;"), Str("b")), TupleOf(Str("a"), Str(";b"))},
		{TupleOf(Int(12), Int(3)), TupleOf(Int(1), Int(23))},
		{Str("i1;"), Int(1)},
		{TupleOf(TupleOf(Int(1)), Int(2)), TupleOf(Int(1), TupleOf(Int(2)))},
	}
	for _, p := range pairs {
		ka, err := p[0].Key()
		if err != nil {
			t.Fatal(err)
		}
		kb, err := p[1].Key()
		if err != nil {
			t.Fatal(err)
		}
		if ka == kb {
			t.Errorf("key collision: %s and %s both encode to %q", p[0], p[1], ka)
		}
	}
}

func TestMapDeleteAndKeysSorted(t *testing.T) {
	m := NewMap()
	for _, i := range []int64{3, 1, 2} {
		_ = m.Map.Set(Int(i), Int(i*10))
	}
	if m.Map.Len() != 3 {
		t.Fatalf("len = %d", m.Map.Len())
	}
	_ = m.Map.Delete(Int(2))
	if m.Map.Len() != 2 {
		t.Fatalf("len after delete = %d", m.Map.Len())
	}
	keys := m.Map.Keys()
	if len(keys) != 2 || keys[0].I != 1 || keys[1].I != 3 {
		t.Errorf("Keys() = %v", keys)
	}
	if err := m.Map.Delete(Int(99)); err != nil {
		t.Errorf("deleting absent key: %v", err)
	}
}

func TestUnhashableKey(t *testing.T) {
	m := NewMap()
	if err := m.Map.Set(NewList(Int(1)), Int(1)); err == nil {
		t.Error("list used as map key did not error")
	}
}

func TestCloneIsolation(t *testing.T) {
	m := NewMap()
	_ = m.Map.Set(Str("k"), Int(1))
	lst := NewList(Int(1), Int(2))
	pkt := NewPacket(map[string]Value{"sip": Str("1.1.1.1")})

	mc, lc, pc := m.Clone(), lst.Clone(), pkt.Clone()
	_ = m.Map.Set(Str("k"), Int(2))
	lst.List.Elems[0] = Int(99)
	pkt.Pkt.Fields["sip"] = Str("9.9.9.9")

	if v, _, _ := mc.Map.Get(Str("k")); v.I != 1 {
		t.Error("map clone aliased original")
	}
	if lc.List.Elems[0].I != 1 {
		t.Error("list clone aliased original")
	}
	if pc.Pkt.Fields["sip"].S != "1.1.1.1" {
		t.Error("packet clone aliased original")
	}
}

func TestHashDeterministic(t *testing.T) {
	a, err := Hash(Str("1.1.1.1"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Hash(Str("1.1.1.1"))
	if a != b {
		t.Error("hash not deterministic")
	}
	if a < 0 {
		t.Error("hash negative")
	}
	c, _ := Hash(Str("1.1.1.2"))
	if a == c {
		t.Error("suspicious hash collision on near inputs")
	}
	if _, err := Hash(NewMap()); err == nil {
		t.Error("hash of map did not error")
	}
}

func TestIsTruthy(t *testing.T) {
	if b, err := Bool(true).IsTruthy(); err != nil || !b {
		t.Error("Bool(true) not truthy")
	}
	if _, err := Int(1).IsTruthy(); err == nil {
		t.Error("Int truthiness should error")
	}
}

func TestLen(t *testing.T) {
	cases := []struct {
		v    Value
		want int
	}{
		{Str("abc"), 3},
		{TupleOf(Int(1), Int(2)), 2},
		{NewList(Int(1)), 1},
		{NewMap(), 0},
	}
	for _, c := range cases {
		got, err := c.v.Len()
		if err != nil || got != c.want {
			t.Errorf("Len(%s) = %d, %v; want %d", c.v, got, err, c.want)
		}
	}
	if _, err := Int(1).Len(); err == nil {
		t.Error("len(int) should error")
	}
}

// Property: key encoding is injective on int/string/bool scalars and
// flat tuples thereof.
func TestKeyInjectiveProperty(t *testing.T) {
	f := func(a1, b1 int64, s1, s2 string) bool {
		va := TupleOf(Int(a1), Str(s1))
		vb := TupleOf(Int(b1), Str(s2))
		ka, err1 := va.Key()
		kb, err2 := vb.Key()
		if err1 != nil || err2 != nil {
			return false
		}
		return (ka == kb) == Equal(va, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal is reflexive and symmetric on random tuples.
func TestEqualSymmetricProperty(t *testing.T) {
	f := func(a, b int64, s string) bool {
		va := TupleOf(Int(a), Str(s), Bool(a%2 == 0))
		vb := TupleOf(Int(b), Str(s), Bool(b%2 == 0))
		if !Equal(va, va) || !Equal(vb, vb) {
			return false
		}
		return Equal(va, vb) == Equal(vb, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
