package verify_test

import (
	"strings"
	"testing"

	"nfactor/internal/netpkt"
	"nfactor/internal/value"
	"nfactor/internal/verify"
)

// fwNetwork builds h1 --eth0--> s1 --lan--> fw --wan--> srv with a
// single route (9.9.9.9) at the switch. withWanLink controls whether the
// firewall's wan interface is connected — disconnecting it turns every
// allowed packet into a black-hole at fw.
func fwNetwork(t *testing.T, withWanLink bool) *verify.Network {
	t.Helper()
	n := verify.NewNetwork()
	n.AddHost("h1")
	n.AddHost("srv")
	n.AddSwitch("s1", map[string]string{"9.9.9.9": "lan"})
	n.AddNF("fw", instance(t, analyzed(t, "firewall")))
	for _, l := range [][3]string{{"h1", "eth0", "s1"}, {"s1", "lan", "fw"}} {
		if err := n.Link(l[0], l[1], l[2]); err != nil {
			t.Fatal(err)
		}
	}
	if withWanLink {
		if err := n.Link("fw", "wan", "srv"); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func egressPkt(dport int) value.Value {
	return netpkt.Packet{
		SrcIP: "10.0.0.5", DstIP: "9.9.9.9",
		SrcPort: 1234, DstPort: dport,
		Proto: "tcp", Flags: "S", TTL: 64,
	}.ToValue()
}

// TestInjectReportDelivered: an allowed packet is accounted as exactly
// one delivery, with no drops and no black-holes.
func TestInjectReportDelivered(t *testing.T) {
	n := fwNetwork(t, true)
	res, err := n.InjectReport("h1", egressPkt(80))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delivered) != 1 || res.Dropped != 0 || len(res.BlackHoles) != 0 {
		t.Fatalf("want 1 delivery only, got %+v", res)
	}
	d := res.Delivered[0]
	if d.Host != "srv" {
		t.Errorf("delivered at %s, want srv", d.Host)
	}
	if got := strings.Join(d.Path, ">"); got != "h1>s1>fw>srv" {
		t.Errorf("path %s, want h1>s1>fw>srv", got)
	}
	if got := res.Hosts(); len(got) != 1 || got[0] != "srv" {
		t.Errorf("Hosts() = %v, want [srv]", got)
	}
}

// TestInjectReportDropIsNotBlackHole: the firewall's policy drop (dport
// outside the egress set) counts as a drop, NOT a black-hole — the node
// decided to consume the packet. This is the concrete side of the
// NFL404 semantics: only vanished traffic is a black-hole.
func TestInjectReportDropIsNotBlackHole(t *testing.T) {
	n := fwNetwork(t, true)
	res, err := n.InjectReport("h1", egressPkt(23))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", res.Dropped)
	}
	if len(res.Delivered) != 0 || len(res.BlackHoles) != 0 {
		t.Errorf("policy drop misclassified: %+v", res)
	}
}

// TestInjectReportSwitchBlackHole: a destination with no forwarding
// entry black-holes at the switch, and is distinguished from a drop.
func TestInjectReportSwitchBlackHole(t *testing.T) {
	n := fwNetwork(t, true)
	pkt := netpkt.Packet{SrcIP: "10.0.0.5", DstIP: "203.0.113.7", DstPort: 80, Proto: "tcp", TTL: 64}.ToValue()
	res, err := n.InjectReport("h1", pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BlackHoles) != 1 || res.Dropped != 0 || len(res.Delivered) != 0 {
		t.Fatalf("want 1 black-hole only, got %+v", res)
	}
	b := res.BlackHoles[0]
	if b.Node != "s1" || !strings.Contains(b.Reason, "no forwarding entry") {
		t.Errorf("black-hole = %+v, want at s1 with no-forwarding-entry reason", b)
	}
	if got := strings.Join(b.Path, ">"); got != "h1>s1" {
		t.Errorf("path %s, want h1>s1", got)
	}
}

// TestInjectReportUnconnectedIfaceBlackHole: a send on an interface with
// no link black-holes at the sending node.
func TestInjectReportUnconnectedIfaceBlackHole(t *testing.T) {
	n := fwNetwork(t, false) // fw's wan iface unconnected
	res, err := n.InjectReport("h1", egressPkt(80))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BlackHoles) != 1 || len(res.Delivered) != 0 || res.Dropped != 0 {
		t.Fatalf("want 1 black-hole only, got %+v", res)
	}
	b := res.BlackHoles[0]
	if b.Node != "fw" || !strings.Contains(b.Reason, "unconnected interface") {
		t.Errorf("black-hole = %+v, want at fw with unconnected-interface reason", b)
	}
}

// TestInjectReportEntryHostNoLinks: injecting at a host with no links
// black-holes immediately rather than silently succeeding.
func TestInjectReportEntryHostNoLinks(t *testing.T) {
	n := verify.NewNetwork()
	n.AddHost("lonely")
	res, err := n.InjectReport("lonely", egressPkt(80))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BlackHoles) != 1 || res.BlackHoles[0].Node != "lonely" {
		t.Fatalf("want black-hole at lonely, got %+v", res)
	}
}

// TestInjectKeepsDeliveredContract: the legacy Inject wrapper still
// returns the hosts reached.
func TestInjectKeepsDeliveredContract(t *testing.T) {
	n := fwNetwork(t, true)
	hosts, err := n.Inject("h1", egressPkt(443))
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 1 || hosts[0] != "srv" {
		t.Errorf("Inject = %v, want [srv]", hosts)
	}
	got, err := n.Delivered("srv")
	if err != nil || len(got) != 1 {
		t.Errorf("Delivered(srv) = %v, %v; want one packet", got, err)
	}
}
