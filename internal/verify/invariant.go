// invariant.go defines the network invariant language checked over
// SymNetwork explorations, and the parallel checker that fans
// per-(entry-host, traffic-class) explorations over the shared worker
// pool with worker-count-invariant results.
package verify

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"nfactor/internal/buzz"
	"nfactor/internal/solver"
	"nfactor/internal/symexec"
	"nfactor/internal/value"
)

// InvariantKind enumerates the checkable network properties.
type InvariantKind int

// The invariant kinds.
const (
	// InvReach: reach(src,dst) — some packet from src's IP to dst's IP
	// is delivered at dst.
	InvReach InvariantKind = iota
	// InvIsolation: isolation(src,dst) — no packet from src's IP to
	// dst's IP is ever delivered at dst (MustNotReach).
	InvIsolation
	// InvWaypoint: waypoint(src,dst,via) — every delivery from src to
	// dst traverses node via.
	InvWaypoint
	// InvLoopFree: loopfree — no injected class from any host can enter
	// a forwarding loop.
	InvLoopFree
	// InvNoBlackHole: noblackhole — no injected class from any host
	// vanishes without an explicit drop.
	InvNoBlackHole
)

// Invariant is one parsed network property.
type Invariant struct {
	Kind          InvariantKind
	Src, Dst, Via string
	Raw           string
}

// String returns the invariant's source form.
func (v Invariant) String() string { return v.Raw }

// ParseInvariant parses the invariant syntax used by topology files and
// the nfverify -invariant flag:
//
//	reach(src,dst)  isolation(src,dst)  waypoint(src,dst,via)
//	loopfree        noblackhole
func ParseInvariant(s string) (Invariant, error) {
	raw := strings.TrimSpace(s)
	name, rest, hasArgs := strings.Cut(raw, "(")
	name = strings.TrimSpace(name)
	var args []string
	if hasArgs {
		body, ok := strings.CutSuffix(strings.TrimSpace(rest), ")")
		if !ok {
			return Invariant{}, fmt.Errorf("verify: invariant %q: missing ')'", raw)
		}
		for _, a := range strings.Split(body, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("verify: invariant %q: want %d argument(s), got %d", raw, n, len(args))
		}
		for _, a := range args {
			if a == "" {
				return fmt.Errorf("verify: invariant %q: empty argument", raw)
			}
		}
		return nil
	}
	inv := Invariant{Raw: raw}
	switch name {
	case "reach":
		inv.Kind = InvReach
		if err := need(2); err != nil {
			return Invariant{}, err
		}
		inv.Src, inv.Dst = args[0], args[1]
	case "isolation":
		inv.Kind = InvIsolation
		if err := need(2); err != nil {
			return Invariant{}, err
		}
		inv.Src, inv.Dst = args[0], args[1]
	case "waypoint":
		inv.Kind = InvWaypoint
		if err := need(3); err != nil {
			return Invariant{}, err
		}
		inv.Src, inv.Dst, inv.Via = args[0], args[1], args[2]
	case "loopfree":
		inv.Kind = InvLoopFree
		if err := need(0); err != nil {
			return Invariant{}, err
		}
	case "noblackhole":
		inv.Kind = InvNoBlackHole
		if err := need(0); err != nil {
			return Invariant{}, err
		}
	default:
		return Invariant{}, fmt.Errorf("verify: unknown invariant %q", raw)
	}
	return inv, nil
}

// ViolationKind classifies how an invariant failed.
type ViolationKind int

// The violation kinds, each mapping to one NFLint network diagnostic.
const (
	VIsolationBreach ViolationKind = iota // NFL401
	VForwardingLoop                       // NFL402
	VWaypointBypass                       // NFL403
	VBlackHole                            // NFL404
	VUnreachable                          // NFL404 (traffic never arrives)
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case VIsolationBreach:
		return "isolation-breach"
	case VForwardingLoop:
		return "forwarding-loop"
	case VWaypointBypass:
		return "waypoint-bypass"
	case VBlackHole:
		return "black-hole"
	default:
		return "unreachable"
	}
}

// Violation is one proven invariant failure. Conds is the symbolic
// constraint witness (unsatisfiable-free by construction); Packet, when
// non-zero, is a concrete packet satisfying Conds that replays the
// violation on a cold concrete Network.
type Violation struct {
	Invariant Invariant
	Kind      ViolationKind
	Node      string // offending node: loop node, black-hole node, breached/bypassed destination
	Path      []string
	Conds     []solver.Term
	Packet    value.Value
	Detail    string
}

// String renders the violation as one line.
func (v Violation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s", v.Invariant.Raw, v.Detail)
	if len(v.Path) > 0 {
		fmt.Fprintf(&sb, " (path %s)", strings.Join(v.Path, " -> "))
	}
	if v.Packet.Kind == value.KindPacket {
		fmt.Fprintf(&sb, " witness %s", v.Packet)
	}
	return sb.String()
}

// Report is the outcome of checking a set of invariants.
type Report struct {
	Invariants   []Invariant
	Violations   []Violation
	Explorations int // symbolic injections performed
}

// Clean reports whether every invariant held.
func (r *Report) Clean() bool { return len(r.Violations) == 0 }

// checkTask is one (invariant, entry-host, traffic-class) exploration.
type checkTask struct {
	inv   Invariant
	entry string
	extra []solver.Term
}

// Check verifies the invariants against the topology. Each
// (invariant, entry-host) pair becomes an independent symbolic
// exploration fanned over opts.Workers goroutines; results are merged in
// task order, so the report is byte-identical at every worker count.
func (n *SymNetwork) Check(invs []Invariant, opts ExploreOpts) (*Report, error) {
	var tasks []checkTask
	for _, inv := range invs {
		switch inv.Kind {
		case InvReach, InvIsolation, InvWaypoint:
			extra, err := n.pairClass(inv)
			if err != nil {
				return nil, err
			}
			if inv.Kind == InvWaypoint && !n.has(inv.Via) {
				return nil, fmt.Errorf("verify: invariant %q: unknown waypoint %q", inv.Raw, inv.Via)
			}
			tasks = append(tasks, checkTask{inv: inv, entry: inv.Src, extra: extra})
		case InvLoopFree, InvNoBlackHole:
			// Topology-wide: one unconstrained injection per host.
			for _, h := range n.Hosts() {
				tasks = append(tasks, checkTask{inv: inv, entry: h})
			}
		}
	}
	results := make([][]Violation, len(tasks))
	errs := make([]error, len(tasks))
	symexec.RunIndexed(len(tasks), opts.Workers, func(i int) {
		results[i], errs[i] = n.runTask(tasks[i], opts)
	})
	rep := &Report{Invariants: invs, Explorations: len(tasks)}
	seen := map[string]bool{}
	for i, vs := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		for _, v := range vs {
			// Topology-wide invariants rediscover the same loop or
			// black-hole from multiple entry hosts; keep the first.
			key := fmt.Sprintf("%d|%s|%s", v.Kind, v.Node, v.Detail)
			if (v.Kind == VForwardingLoop || v.Kind == VBlackHole) && seen[key] {
				continue
			}
			seen[key] = true
			rep.Violations = append(rep.Violations, v)
		}
	}
	return rep, nil
}

// pairClass builds the traffic-class constraints for a src→dst
// invariant: pkt.sip fixed to src's IP when the host is addressed. The
// destination is deliberately NOT constrained by address — delivery is
// judged by which host the packet arrives at, and pinning pkt.dip would
// be wrong behind NATs (traffic reaching a backend is addressed to the
// load balancer's VIP, and an isolation breach must be found whatever
// destination the attacker writes into the header).
func (n *SymNetwork) pairClass(inv Invariant) ([]solver.Term, error) {
	sip, ok := n.HostIP(inv.Src)
	if !ok {
		return nil, fmt.Errorf("verify: invariant %q: unknown host %q", inv.Raw, inv.Src)
	}
	if _, ok := n.HostIP(inv.Dst); !ok {
		return nil, fmt.Errorf("verify: invariant %q: unknown host %q", inv.Raw, inv.Dst)
	}
	var extra []solver.Term
	if sip != "" {
		extra = append(extra, solver.Bin{Op: "==", X: solver.Var{Name: "pkt.sip"}, Y: solver.Const{V: value.Str(sip)}})
	}
	return extra, nil
}

func (n *SymNetwork) runTask(t checkTask, opts ExploreOpts) ([]Violation, error) {
	exp, err := n.Explore(t.entry, t.extra, opts)
	if err != nil {
		return nil, err
	}
	var out []Violation
	switch t.inv.Kind {
	case InvReach:
		for _, d := range exp.Deliveries {
			if d.Host == t.inv.Dst {
				return nil, nil // held
			}
		}
		out = append(out, Violation{
			Invariant: t.inv, Kind: VUnreachable, Node: t.inv.Dst, Conds: t.extra,
			Detail: n.unreachableDetail(t, exp),
		})
	case InvIsolation:
		for _, d := range exp.Deliveries {
			if d.Host != t.inv.Dst {
				continue
			}
			out = append(out, n.witnessed(Violation{
				Invariant: t.inv, Kind: VIsolationBreach, Node: d.Host, Path: d.Path, Conds: d.Conds,
				Detail: fmt.Sprintf("traffic from %s is delivered at %s", t.inv.Src, t.inv.Dst),
			}, opts))
		}
	case InvWaypoint:
		for _, d := range exp.Deliveries {
			if d.Host != t.inv.Dst || contains(d.Path, t.inv.Via) {
				continue
			}
			out = append(out, n.witnessed(Violation{
				Invariant: t.inv, Kind: VWaypointBypass, Node: t.inv.Via, Path: d.Path, Conds: d.Conds,
				Detail: fmt.Sprintf("delivery at %s bypasses waypoint %s", t.inv.Dst, t.inv.Via),
			}, opts))
		}
	case InvLoopFree:
		for _, l := range exp.Loops {
			out = append(out, n.witnessed(Violation{
				Invariant: t.inv, Kind: VForwardingLoop, Node: l.Node, Path: l.Path, Conds: l.Conds,
				Detail: fmt.Sprintf("forwarding loop: %s", l.Reason),
			}, opts))
		}
	case InvNoBlackHole:
		for _, b := range exp.BlackHoles {
			out = append(out, n.witnessed(Violation{
				Invariant: t.inv, Kind: VBlackHole, Node: b.Node, Path: b.Path, Conds: b.Conds,
				Detail: fmt.Sprintf("black-hole at %s: %s", b.Node, b.Reason),
			}, opts))
		}
	}
	return out, nil
}

// unreachableDetail explains why nothing arrived: how many classes were
// dropped versus black-holed on the way.
func (n *SymNetwork) unreachableDetail(t checkTask, exp *Exploration) string {
	parts := []string{fmt.Sprintf("no traffic from %s reaches %s", t.inv.Src, t.inv.Dst)}
	if exp.Drops > 0 {
		parts = append(parts, fmt.Sprintf("%d class(es) dropped by NFs", exp.Drops))
	}
	if len(exp.BlackHoles) > 0 {
		bh := exp.BlackHoles[0]
		parts = append(parts, fmt.Sprintf("%d class(es) black-holed (first at %s: %s)", len(exp.BlackHoles), bh.Node, bh.Reason))
	}
	return strings.Join(parts, "; ")
}

// witnessed attaches a concrete witness packet to the violation:
// constraint-directed synthesis over the violation's (fully grounded)
// constraint set, seeded deterministically per violation so the result
// is independent of scheduling. Synthesis can fail only for classes the
// randomized completion cannot hit; the symbolic witness stands either
// way.
func (n *SymNetwork) witnessed(v Violation, opts ExploreOpts) Violation {
	if opts.SymbolicState {
		return v // residual state variables: not concretely replayable
	}
	tries := opts.SynthTries
	if tries == 0 {
		tries = 256
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed + int64(len(v.Conds))))
	if pkt := buzz.Synthesize(v.Conds, nil, nil, rng, tries); pkt.Kind == value.KindPacket {
		v.Packet = pkt
	}
	return v
}

func contains(path []string, node string) bool {
	for _, p := range path {
		if p == node {
			return true
		}
	}
	return false
}

// SortViolations orders violations deterministically: by invariant text,
// then kind, node, and path.
func SortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.Invariant.Raw != b.Invariant.Raw {
			return a.Invariant.Raw < b.Invariant.Raw
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return strings.Join(a.Path, ">") < strings.Join(b.Path, ">")
	})
}
