package verify

import (
	"fmt"
	"strings"

	"nfactor/internal/model"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// EntryReachable decides whether a model entry can ever fire, starting
// from the NF's initial state, within maxSteps packets — multi-step
// symbolic reachability over the model's state machine. Each step k gets
// its own symbolic packet (pkt{k}.*); firing an entry conjoins its guard
// (with the current symbolic state substituted) and applies its state
// transitions to produce the next state.
//
// This is the symbolic counterpart of internal/buzz: buzz searches for
// concrete covering packets, EntryReachable proves whether a covering
// sequence exists at all — e.g. that the firewall's inbound-allow entry
// is unreachable in one step but reachable in two (outbound first).
type ReachResult struct {
	Reachable bool
	// Entries is the witness sequence of entry indices (last = target).
	Entries []int
	// Conds is the combined constraint over pkt0.., pkt1.. and the
	// initial state.
	Conds []solver.Term
}

// String renders the result.
func (r *ReachResult) String() string {
	if !r.Reachable {
		return "unreachable"
	}
	parts := make([]string, len(r.Conds))
	for i, c := range r.Conds {
		parts[i] = c.String()
	}
	return fmt.Sprintf("reachable via entries %v under %s", r.Entries, strings.Join(parts, " && "))
}

// EntryReachable explores entry sequences of length ≤ maxSteps ending at
// target. initState provides the concrete initial values of the model's
// state variables (as from core.Analysis.ConfigAndState).
func EntryReachable(m *model.Model, target int, initState map[string]value.Value, maxSteps int) (*ReachResult, error) {
	if target < 0 || target >= len(m.Entries) {
		return nil, fmt.Errorf("verify: entry %d out of range", target)
	}
	if maxSteps < 1 {
		maxSteps = 1
	}
	// Initial symbolic state: the concrete initial values as constants.
	init := map[string]solver.Term{}
	for _, name := range m.OISVars {
		v, ok := initState[name]
		if !ok {
			return nil, fmt.Errorf("verify: missing initial state for %q", name)
		}
		init[name] = solver.Const{V: v.Clone()}
	}

	var found *ReachResult
	var rec func(step int, state map[string]solver.Term, conds []solver.Term, seq []int)
	rec = func(step int, state map[string]solver.Term, conds []solver.Term, seq []int) {
		if found != nil || step >= maxSteps {
			return
		}
		prefix := fmt.Sprintf("pkt%d.", step)
		for i := range m.Entries {
			if found != nil {
				return
			}
			e := &m.Entries[i]
			next := append([]solver.Term{}, conds...)
			ok := true
			for _, g := range e.Guard() {
				ng := solver.Simplify(bindStep(g, prefix, state))
				if b, isB := solver.IsConstBool(ng); isB {
					if !b {
						ok = false
						break
					}
					continue
				}
				next = append(next, ng)
			}
			if !ok || !solver.SatConj(next) {
				continue
			}
			seq2 := append(append([]int{}, seq...), i)
			if i == target {
				found = &ReachResult{Reachable: true, Entries: seq2, Conds: next}
				return
			}
			// Apply the entry's state transitions.
			ns := make(map[string]solver.Term, len(state))
			for k, v := range state {
				ns[k] = v
			}
			for _, u := range e.Updates {
				ns[u.Name] = solver.Simplify(bindStep(u.Val, prefix, state))
			}
			rec(step+1, ns, next, seq2)
		}
	}
	rec(0, init, nil, nil)
	if found == nil {
		return &ReachResult{Reachable: false}, nil
	}
	return found, nil
}

// bindStep renames this step's packet fields (pkt.f → pkt{k}.f) and
// substitutes state snapshots (x@0, m@0) by the current symbolic state.
func bindStep(t solver.Term, pktPrefix string, state map[string]solver.Term) solver.Term {
	switch x := t.(type) {
	case solver.Var:
		if f, ok := strings.CutPrefix(x.Name, "pkt."); ok {
			return solver.Var{Name: pktPrefix + f}
		}
		if base, ok := strings.CutSuffix(x.Name, "@0"); ok {
			if s, ok := state[base]; ok {
				return s
			}
		}
		return t
	case solver.MapVar:
		if base, ok := strings.CutSuffix(x.Name, "@0"); ok {
			if s, ok := state[base]; ok {
				return s
			}
		}
		return t
	case solver.Bin:
		return solver.Bin{Op: x.Op, X: bindStep(x.X, pktPrefix, state), Y: bindStep(x.Y, pktPrefix, state)}
	case solver.Un:
		return solver.Un{Op: x.Op, X: bindStep(x.X, pktPrefix, state)}
	case solver.Call:
		args := make([]solver.Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = bindStep(a, pktPrefix, state)
		}
		return solver.Call{Fn: x.Fn, Args: args}
	case solver.Tuple:
		elems := make([]solver.Term, len(x.Elems))
		for i, e := range x.Elems {
			elems[i] = bindStep(e, pktPrefix, state)
		}
		return solver.Tuple{Elems: elems}
	case solver.Index:
		return solver.Index{X: bindStep(x.X, pktPrefix, state), I: bindStep(x.I, pktPrefix, state)}
	case solver.Select:
		return solver.Select{M: bindStep(x.M, pktPrefix, state), K: bindStep(x.K, pktPrefix, state)}
	case solver.Store:
		return solver.Store{M: bindStep(x.M, pktPrefix, state), K: bindStep(x.K, pktPrefix, state), V: bindStep(x.V, pktPrefix, state)}
	case solver.Del:
		return solver.Del{M: bindStep(x.M, pktPrefix, state), K: bindStep(x.K, pktPrefix, state)}
	case solver.In:
		return solver.In{K: bindStep(x.K, pktPrefix, state), M: bindStep(x.M, pktPrefix, state)}
	default:
		return t
	}
}
