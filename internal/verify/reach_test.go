package verify_test

import (
	"testing"

	"nfactor/internal/verify"

	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// findEntry locates the first model entry satisfying pred.
func findEntryIdx(t *testing.T, entries int, pred func(int) bool) int {
	t.Helper()
	for i := 0; i < entries; i++ {
		if pred(i) {
			return i
		}
	}
	t.Fatal("entry not found")
	return -1
}

func TestFirewallInboundAllowNeedsTwoSteps(t *testing.T) {
	an := analyzed(t, "firewall")
	m := an.Model
	_, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}

	// The inbound-allow entry: a send whose guard includes a positive
	// conns membership.
	target := findEntryIdx(t, len(m.Entries), func(i int) bool {
		e := &m.Entries[i]
		if e.Dropped() {
			return false
		}
		for _, c := range e.StateMatch {
			if _, ok := c.(solver.In); ok {
				return true
			}
		}
		return false
	})

	// One packet cannot fire it: conns starts empty.
	res, err := verify.EntryReachable(m, target, state, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Errorf("inbound-allow reachable in one step: %s", res)
	}

	// Two packets can: an outbound packet installs the flow first.
	res, err = verify.EntryReachable(m, target, state, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("inbound-allow not reachable in two steps")
	}
	if len(res.Entries) != 2 || res.Entries[1] != target {
		t.Errorf("witness sequence = %v", res.Entries)
	}
	// The first step must be the outbound-allow entry (the only one that
	// updates conns).
	first := &m.Entries[res.Entries[0]]
	if len(first.Updates) == 0 {
		t.Errorf("first step %d does not install state", res.Entries[0])
	}
}

func TestLBExistingConnectionNeedsPriorFlow(t *testing.T) {
	an := analyzed(t, "lb")
	m := an.Model
	_, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The existing-connection entry: sends, and its state match has a
	// positive f2b_nat membership.
	target := findEntryIdx(t, len(m.Entries), func(i int) bool {
		e := &m.Entries[i]
		if e.Dropped() || len(e.Updates) > 0 {
			return false
		}
		for _, c := range e.StateMatch {
			if in, ok := c.(solver.In); ok {
				if mv, ok := in.M.(solver.MapVar); ok && mv.Name == "f2b_nat@0" {
					return true
				}
			}
		}
		return false
	})

	res, err := verify.EntryReachable(m, target, state, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Errorf("existing-connection entry reachable with empty NAT table: %s", res)
	}
	res, err = verify.EntryReachable(m, target, state, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Error("existing-connection entry not reachable after one flow-creating packet")
	}
}

func TestEveryNonConfigGatedEntryEventuallyReachable(t *testing.T) {
	// Every snortlite entry without a contradictory configuration gate
	// must be reachable within 2 steps (flood entries need a prior SYN).
	an := analyzed(t, "snortlite")
	m := an.Model
	_, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	unreachable := 0
	for i := range m.Entries {
		res, err := verify.EntryReachable(m, i, state, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reachable {
			unreachable++
			t.Logf("entry %d unreachable in 2 steps", i)
		}
	}
	// SYN_LIMIT=100 flood entries genuinely need 100 steps; everything
	// else must be reachable.
	if unreachable > 2 {
		t.Errorf("%d entries unreachable within 2 steps", unreachable)
	}
}

func TestEntryReachableErrors(t *testing.T) {
	an := analyzed(t, "nat")
	_, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.EntryReachable(an.Model, 999, state, 1); err == nil {
		t.Error("out-of-range entry did not error")
	}
	if _, err := verify.EntryReachable(an.Model, 0, map[string]value.Value{}, 1); err == nil {
		t.Error("missing initial state did not error")
	}
}
