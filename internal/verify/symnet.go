// symnet.go implements the symbolic topology explorer: ChainEntryReach's
// per-hop composition generalized from a linear chain to an arbitrary
// branching network of hosts, switches and synthesized NF models. A
// symbolic packet class — a conjunction of constraints on the injected
// packet — is walked through the topology; switches case-split the class
// over their forwarding tables, NF models case-split it over their table
// entries (per-node config grounding keeps two instances of the same NF
// independent, and lets the memoizing solver cache share verdicts when
// they are NOT independent), and every trajectory ends in one of four
// dispositions, each with a solver-checked constraint witness:
//
//   - delivery at a host (the reachability side),
//   - an explicit NF drop (including the §3.2 implicit drop),
//   - a black-hole: a switch with no route for the class, or a send on
//     an unconnected interface (NFL404),
//   - a forwarding loop: the class revisits a node with an identical
//     header state, so the deterministic transfer functions repeat
//     forever (NFL402).
//
// NF state is grounded to each node's initial values by default
// (ExploreOpts.SymbolicState keeps it symbolic instead): loop cutting
// guarantees a class traverses each node at most once per trajectory, so
// within one walk the pre-state IS the initial state, and — unlike a
// symbolic state treatment — every verdict is concretely replayable on a
// cold concrete Network, which is how the checks validate themselves.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"nfactor/internal/model"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// SymNF is one NF node of a symbolic topology: a synthesized model plus
// the concrete configuration and initial state it is deployed with.
type SymNF struct {
	Model  *model.Model
	Config map[string]value.Value
	State  map[string]value.Value
}

// SymNetwork is a topology of hosts, switches and NF models for symbolic
// exploration. Unlike the concrete Network it holds no mutable state:
// explorations are independent and safe to run concurrently.
type SymNetwork struct {
	hosts    map[string]string            // name -> ip ("" when unaddressed)
	switches map[string]map[string]string // name -> dst ip -> out iface
	nfs      map[string]*SymNF
	links    map[string]map[string]string // node -> out iface -> peer
}

// NewSymNetwork returns an empty symbolic topology.
func NewSymNetwork() *SymNetwork {
	return &SymNetwork{
		hosts:    map[string]string{},
		switches: map[string]map[string]string{},
		nfs:      map[string]*SymNF{},
		links:    map[string]map[string]string{},
	}
}

func (n *SymNetwork) has(name string) bool {
	if _, ok := n.hosts[name]; ok {
		return true
	}
	if _, ok := n.switches[name]; ok {
		return true
	}
	_, ok := n.nfs[name]
	return ok
}

// AddHost adds an endpoint with an (optional) IP address. Invariants
// identify traffic by host IPs: reach(a,b) constrains pkt.sip to a's IP
// and pkt.dip to b's.
func (n *SymNetwork) AddHost(name, ip string) error {
	if n.has(name) {
		return fmt.Errorf("verify: duplicate node %q", name)
	}
	n.hosts[name] = ip
	return nil
}

// AddSwitch adds a switch with a dstIP→iface forwarding table.
func (n *SymNetwork) AddSwitch(name string, byDst map[string]string) error {
	if n.has(name) {
		return fmt.Errorf("verify: duplicate node %q", name)
	}
	routes := make(map[string]string, len(byDst))
	for k, v := range byDst {
		routes[k] = v
	}
	n.switches[name] = routes
	return nil
}

// AddNF adds an NF node.
func (n *SymNetwork) AddNF(name string, nf SymNF) error {
	if n.has(name) {
		return fmt.Errorf("verify: duplicate node %q", name)
	}
	if nf.Model == nil {
		return fmt.Errorf("verify: NF node %q has no model", name)
	}
	n.nfs[name] = &nf
	return nil
}

// Link connects from's out-interface iface to node to. As in the
// concrete Network, the out-interface name is what the receiving NF sees
// as pkt.in_iface, so links into an NF must be named after the interface
// the NF's program matches on.
func (n *SymNetwork) Link(from, iface, to string) error {
	if !n.has(from) {
		return fmt.Errorf("verify: unknown node %q", from)
	}
	if !n.has(to) {
		return fmt.Errorf("verify: unknown node %q", to)
	}
	if n.links[from] == nil {
		n.links[from] = map[string]string{}
	}
	if prev, ok := n.links[from][iface]; ok {
		return fmt.Errorf("verify: duplicate link %s.%s (already to %q)", from, iface, prev)
	}
	n.links[from][iface] = to
	return nil
}

// Hosts returns the host names in sorted order.
func (n *SymNetwork) Hosts() []string {
	out := make([]string, 0, len(n.hosts))
	for h := range n.hosts {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// HostIP returns the host's IP ("" when the host exists but is
// unaddressed) and whether the host exists.
func (n *SymNetwork) HostIP(name string) (string, bool) {
	ip, ok := n.hosts[name]
	return ip, ok
}

// ExploreOpts configure symbolic exploration.
type ExploreOpts struct {
	// Workers bounds invariant-level parallelism in Check (<=0:
	// GOMAXPROCS). Results are byte-identical at every worker count.
	Workers int
	// Cache, when set, memoizes solver verdicts across explorations.
	Cache *solver.Cache
	// SymbolicState keeps NF state symbolic (fresh per-node variables)
	// instead of grounding it to each node's initial values. Symbolic
	// verdicts are sound over all states but not concretely replayable.
	SymbolicState bool
	// MaxHops bounds trajectory length (default 64); exceeding it is
	// conservatively reported as a loop.
	MaxHops int
	// SynthTries bounds concrete-witness synthesis attempts per
	// violation (default 256).
	SynthTries int
	// Seed drives witness synthesis (default 1). Synthesis is seeded
	// per violation, so results do not depend on scheduling.
	Seed int64
}

const defaultMaxSymHops = 64

func (o ExploreOpts) maxHops() int {
	if o.MaxHops > 0 {
		return o.MaxHops
	}
	return defaultMaxSymHops
}

// SymDelivery is a symbolic packet class that reaches a host: the node
// path (entry first, host last) and the constraints on the injected
// packet under which the path is taken.
type SymDelivery struct {
	Host  string
	Path  []string
	Conds []solver.Term
}

// SymLoop is a proven forwarding loop: a class that revisits a node with
// an identical header state, so the deterministic per-node transfer
// functions repeat forever. Path ends at the revisited node.
type SymLoop struct {
	Node   string
	Path   []string
	Conds  []solver.Term
	Reason string
}

// SymBlackHole is a class that vanishes without any node deciding to
// drop it.
type SymBlackHole struct {
	Node   string
	Path   []string
	Conds  []solver.Term
	Reason string
}

// Exploration is every trajectory of one symbolic injection.
type Exploration struct {
	Entry      string
	Deliveries []SymDelivery
	Loops      []SymLoop
	BlackHoles []SymBlackHole
	// Drops counts classes consumed by an explicit (or §3.2 implicit)
	// NF drop — defined behavior, not a diagnostic.
	Drops int
}

// Explore injects a symbolic packet constrained by extra at entry and
// walks every feasible trajectory. Exploration order is deterministic:
// switch routes by destination, NF entries by index, links by interface
// name — independent of worker count (Explore itself is sequential;
// Check parallelizes across explorations).
func (n *SymNetwork) Explore(entry string, extra []solver.Term, opts ExploreOpts) (*Exploration, error) {
	if !n.has(entry) {
		return nil, fmt.Errorf("verify: unknown node %q", entry)
	}
	w := &walker{n: n, opts: opts, exp: &Exploration{Entry: entry}}
	conds := append([]solver.Term{}, extra...)
	if !w.sat(conds) {
		return w.exp, nil // the injected class itself is empty
	}
	err := w.walk(entry, conds, map[string]solver.Term{}, []string{entry}, map[string]bool{})
	if err != nil {
		return nil, err
	}
	return w.exp, nil
}

type walker struct {
	n    *SymNetwork
	opts ExploreOpts
	exp  *Exploration
}

func (w *walker) sat(lits []solver.Term) bool { return w.opts.Cache.SatSplit(lits) }

func (w *walker) walk(node string, conds []solver.Term, fields map[string]solver.Term, path []string, visited map[string]bool) error {
	if len(path) > w.opts.maxHops() {
		w.exp.Loops = append(w.exp.Loops, SymLoop{
			Node: node, Path: path, Conds: conds,
			Reason: fmt.Sprintf("trajectory exceeds %d hops", w.opts.maxHops()),
		})
		return nil
	}
	if _, ok := w.n.hosts[node]; ok {
		if len(path) == 1 {
			// The entry host transmits: fan out over its links.
			return w.fanHost(node, conds, fields, path, visited)
		}
		w.exp.Deliveries = append(w.exp.Deliveries, SymDelivery{Host: node, Path: path, Conds: conds})
		return nil
	}
	if routes, ok := w.n.switches[node]; ok {
		return w.walkSwitch(node, routes, conds, fields, path, visited)
	}
	if nf, ok := w.n.nfs[node]; ok {
		return w.walkNF(node, nf, conds, fields, path, visited)
	}
	return fmt.Errorf("verify: unknown node %q", node)
}

func (w *walker) fanHost(node string, conds []solver.Term, fields map[string]solver.Term, path []string, visited map[string]bool) error {
	ifaces := sortedKeys(w.n.links[node])
	if len(ifaces) == 0 {
		w.exp.BlackHoles = append(w.exp.BlackHoles, SymBlackHole{
			Node: node, Path: path, Conds: conds, Reason: "entry host has no links",
		})
		return nil
	}
	for _, iface := range ifaces {
		if err := w.step(node, iface, conds, fields, path, visited); err != nil {
			return err
		}
	}
	return nil
}

// walkSwitch case-splits the class over the forwarding table: one branch
// per feasible route plus the residual no-route class, which black-holes.
func (w *walker) walkSwitch(node string, routes map[string]string, conds []solver.Term, fields map[string]solver.Term, path []string, visited map[string]bool) error {
	dip := fieldTerm(fields, "dip")
	noRoute := append([]solver.Term{}, conds...)
	noRouteOK := true
	for _, dst := range sortedKeys(routes) {
		eq := solver.Simplify(solver.Bin{Op: "==", X: dip, Y: solver.Const{V: value.Str(dst)}})
		branch := conds
		if b, isB := solver.IsConstBool(eq); isB {
			if !b {
				continue // route can never match this class
			}
			noRouteOK = false // route always matches: no residual class
		} else {
			branch = append(append([]solver.Term{}, conds...), eq)
			if !w.sat(branch) {
				continue
			}
			noRoute = append(noRoute, solver.Simplify(solver.Not(eq)))
		}
		if err := w.step(node, routes[dst], branch, fields, path, visited); err != nil {
			return err
		}
	}
	if noRouteOK && w.sat(noRoute) {
		w.exp.BlackHoles = append(w.exp.BlackHoles, SymBlackHole{
			Node: node, Path: path, Conds: noRoute,
			Reason: "no forwarding entry for destination class",
		})
	}
	return nil
}

// walkNF case-splits the class over the model's table entries (mutually
// exclusive by construction), grounding config — and, by default, the
// node's initial state — into each guard before deciding feasibility.
func (w *walker) walkNF(node string, nf *SymNF, conds []solver.Term, fields map[string]solver.Term, path []string, visited map[string]bool) error {
	ground := nf.Config
	if !w.opts.SymbolicState && len(nf.State) > 0 {
		merged := make(map[string]value.Value, len(nf.Config)+len(nf.State))
		for k, v := range nf.Config {
			merged[k] = v
		}
		for k, v := range nf.State {
			merged[k+"@0"] = v // state vars appear in guards as name@0
		}
		ground = merged
	}
	rw := func(t solver.Term) solver.Term {
		return solver.Simplify(groundNamed(substituteFields(namespaceState(groundConfig(t, ground), node), fields)))
	}
	for i := range nf.Model.Entries {
		e := &nf.Model.Entries[i]
		next := append([]solver.Term{}, conds...)
		ok := true
		for _, g := range e.Guard() {
			ng := rw(g)
			if b, isB := solver.IsConstBool(ng); isB {
				if !b {
					ok = false
					break
				}
				continue
			}
			next = append(next, ng)
		}
		if !ok || !w.sat(next) {
			continue
		}
		if e.Dropped() {
			w.exp.Drops++
			continue
		}
		for _, send := range e.Sends {
			nf2 := make(map[string]solver.Term, len(fields)+len(send.Fields))
			for k, v := range fields {
				nf2[k] = v
			}
			for f, t := range send.Fields {
				nf2[f] = rw(t)
			}
			if err := w.send(node, rw(send.Iface), next, nf2, path, visited); err != nil {
				return err
			}
		}
	}
	return nil
}

// send routes one NF output. The model's send interface is a term; when
// it grounds to a constant the packet takes that link, otherwise the
// class is case-split over the node's connected interfaces, with the
// residual (interface matching no link) black-holing.
func (w *walker) send(node string, iface solver.Term, conds []solver.Term, fields map[string]solver.Term, path []string, visited map[string]bool) error {
	if c, isC := iface.(solver.Const); isC && c.V.Kind == value.KindStr {
		return w.step(node, c.V.S, conds, fields, path, visited)
	}
	residual := append([]solver.Term{}, conds...)
	for _, l := range sortedKeys(w.n.links[node]) {
		eq := solver.Simplify(solver.Bin{Op: "==", X: iface, Y: solver.Const{V: value.Str(l)}})
		if b, isB := solver.IsConstBool(eq); isB && !b {
			continue
		}
		branch := append(append([]solver.Term{}, conds...), eq)
		if !w.sat(branch) {
			continue
		}
		residual = append(residual, solver.Simplify(solver.Not(eq)))
		if err := w.step(node, l, branch, fields, path, visited); err != nil {
			return err
		}
	}
	if w.sat(residual) {
		w.exp.BlackHoles = append(w.exp.BlackHoles, SymBlackHole{
			Node: node, Path: path, Conds: residual,
			Reason: fmt.Sprintf("send on unresolved interface %s", iface),
		})
	}
	return nil
}

// step crosses the link from.(iface), stamping the link name as the
// receiver's in_iface (the concrete Network's contract). A revisit of
// (node, in-iface, header state) already on this trajectory is a proven
// forwarding loop: the transfer functions are deterministic per class,
// so the walk from here repeats exactly.
func (w *walker) step(from, iface string, conds []solver.Term, fields map[string]solver.Term, path []string, visited map[string]bool) error {
	peer, ok := w.n.links[from][iface]
	if !ok {
		w.exp.BlackHoles = append(w.exp.BlackHoles, SymBlackHole{
			Node: from, Path: path, Conds: conds,
			Reason: fmt.Sprintf("send on unconnected interface %q", iface),
		})
		return nil
	}
	nf := make(map[string]solver.Term, len(fields)+1)
	for k, v := range fields {
		nf[k] = v
	}
	nf["in_iface"] = solver.Const{V: value.Str(iface)}
	key := peer + "\x00" + iface + "\x00" + fieldsKey(nf)
	next := append(path[:len(path):len(path)], peer)
	if visited[key] {
		w.exp.Loops = append(w.exp.Loops, SymLoop{
			Node: peer, Path: next, Conds: conds,
			Reason: fmt.Sprintf("%s revisited with identical header class", peer),
		})
		return nil
	}
	visited[key] = true
	err := w.walk(peer, conds, nf, next, visited)
	delete(visited, key)
	return err
}

// fieldTerm returns the current symbolic term for a packet field: the
// accumulated rewrite, or the injected packet's own variable.
func fieldTerm(fields map[string]solver.Term, name string) solver.Term {
	if t, ok := fields[name]; ok {
		return t
	}
	return solver.Var{Name: "pkt." + name}
}

// fieldsKey canonicalizes a header state for loop detection.
func fieldsKey(fields map[string]solver.Term) string {
	names := make([]string, 0, len(fields))
	for k := range fields {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = k + "=" + fields[k].Key()
	}
	return strings.Join(parts, ";")
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
