package verify_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/model"
	"nfactor/internal/nfs"
	"nfactor/internal/solver"
	"nfactor/internal/value"
	"nfactor/internal/verify"
)

// resolver resolves corpus NF names through the synthesis pipeline, the
// same way cmd/nfverify does.
func resolver(t *testing.T) verify.NFResolver {
	t.Helper()
	cache := map[string]*core.Analysis{}
	return func(name string) (*model.Model, map[string]value.Value, map[string]value.Value, error) {
		an, ok := cache[name]
		if !ok {
			nf, err := nfs.Load(name)
			if err != nil {
				return nil, nil, nil, err
			}
			an, err = core.Analyze(name, nf.Prog, core.Options{})
			if err != nil {
				return nil, nil, nil, err
			}
			cache[name] = an
		}
		config, state, err := an.ConfigAndState(nil)
		if err != nil {
			return nil, nil, nil, err
		}
		return an.Model, config, state, nil
	}
}

func loadFixture(t *testing.T, name string) (*verify.TopoFile, *verify.SymNetwork, []verify.Invariant) {
	t.Helper()
	topo, err := verify.LoadTopo(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	net, err := topo.Sym(resolver(t))
	if err != nil {
		t.Fatal(err)
	}
	invs, err := topo.ParsedInvariants()
	if err != nil {
		t.Fatal(err)
	}
	return topo, net, invs
}

// TestProtectedTopologyInvariantsHold is the positive side of the §4
// verification story: on the firewall-protected branching deployment,
// isolation of the internal db from the outside, reachability of the
// backend through the full chain, waypointing through the IDS, and
// loop-freedom are all solver-proved clean.
func TestProtectedTopologyInvariantsHold(t *testing.T) {
	_, net, invs := loadFixture(t, "protected.json")
	rep, err := net.Check(invs, verify.ExploreOpts{Cache: solver.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		for _, v := range rep.Violations {
			t.Errorf("unexpected violation: %s", v)
		}
	}
	if rep.Explorations == 0 {
		t.Error("no explorations performed")
	}
}

// TestBreachWitnessReplaysConcretely removes the firewall from evil's
// path (a direct link into the lan switch) and checks the full
// both-ways loop: the symbolic check finds the isolation breach, the
// synthesized witness packet satisfies the constraint set, and replaying
// it on a cold concrete Network delivers it at the protected host along
// the symbolic path.
func TestBreachWitnessReplaysConcretely(t *testing.T) {
	topo, net, invs := loadFixture(t, "breach.json")
	rep, err := net.Check(invs, verify.ExploreOpts{Cache: solver.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	var breach *verify.Violation
	for i := range rep.Violations {
		if rep.Violations[i].Kind == verify.VIsolationBreach {
			breach = &rep.Violations[i]
		}
	}
	if breach == nil {
		t.Fatalf("isolation breach not detected; violations: %v", rep.Violations)
	}
	if breach.Packet.Kind != value.KindPacket {
		t.Fatalf("no concrete witness synthesized for %s", breach)
	}
	if want := []string{"evil", "lanswitch", "db"}; strings.Join(breach.Path, ">") != strings.Join(want, ">") {
		t.Errorf("breach path = %v, want %v", breach.Path, want)
	}

	conc, err := topo.Concrete(resolver(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := conc.InjectReport("evil", breach.Packet)
	if err != nil {
		t.Fatal(err)
	}
	var hit *verify.DeliveredPkt
	for i := range res.Delivered {
		if res.Delivered[i].Host == "db" {
			hit = &res.Delivered[i]
		}
	}
	if hit == nil {
		t.Fatalf("witness packet %s not delivered at db concretely (delivered: %v)", breach.Packet, res.Hosts())
	}
	if strings.Join(hit.Path, ">") != strings.Join(breach.Path, ">") {
		t.Errorf("concrete path %v != symbolic path %v", hit.Path, breach.Path)
	}
}

// TestLoopDetectedAndConfirmedConcretely: the mis-routed switch pair
// yields a proven forwarding-loop witness whose concrete replay trips
// the simulator's hop limit, while the non-looping class still reaches
// its server.
func TestLoopDetectedAndConfirmedConcretely(t *testing.T) {
	topo, net, invs := loadFixture(t, "loop.json")
	rep, err := net.Check(invs, verify.ExploreOpts{Cache: solver.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	var loop *verify.Violation
	for i := range rep.Violations {
		v := &rep.Violations[i]
		if v.Kind == verify.VForwardingLoop {
			loop = v
		} else {
			t.Errorf("unexpected violation: %s", v)
		}
	}
	if loop == nil {
		t.Fatal("forwarding loop not detected")
	}
	if loop.Packet.Kind != value.KindPacket {
		t.Fatalf("no concrete witness synthesized for %s", loop)
	}

	conc, err := topo.Concrete(resolver(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conc.InjectReport("h1", loop.Packet); err == nil {
		t.Error("loop witness packet did not trip the concrete hop limit")
	} else if !strings.Contains(err.Error(), "hop limit") {
		t.Errorf("unexpected replay error: %v", err)
	}
}

// TestCheckWorkerInvariant: the report — violations, order, witnesses —
// is byte-identical at 1 and 4 workers.
func TestCheckWorkerInvariant(t *testing.T) {
	for _, fixture := range []string{"breach.json", "loop.json", "protected.json"} {
		render := func(workers int) string {
			_, net, invs := loadFixture(t, fixture)
			rep, err := net.Check(invs, verify.ExploreOpts{Workers: workers, Cache: solver.NewCache()})
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			fmt.Fprintf(&sb, "explorations=%d\n", rep.Explorations)
			for _, v := range rep.Violations {
				sb.WriteString(v.String())
				sb.WriteString("\n")
			}
			return sb.String()
		}
		if got1, got4 := render(1), render(4); got1 != got4 {
			t.Errorf("%s: report differs across worker counts:\n-- workers=1 --\n%s-- workers=4 --\n%s", fixture, got1, got4)
		}
	}
}

// TestSymbolicStateModeStaysSound: with state symbolic instead of
// grounded, the firewall's established-connection entry becomes
// feasible, so isolation of the protected host can no longer be proven —
// the breach it reports is over SOME state, hence not concretely
// witnessed. This pins down why StateInit is the default for topology
// checks.
func TestSymbolicStateModeStaysSound(t *testing.T) {
	_, net, _ := loadFixture(t, "protected.json")
	inv, err := verify.ParseInvariant("isolation(evil,db)")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := net.Check([]verify.Invariant{inv}, verify.ExploreOpts{Cache: solver.NewCache(), SymbolicState: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Error("symbolic-state mode proved isolation that depends on the firewall's connection state being empty")
	}
	for _, v := range rep.Violations {
		if v.Packet.Kind == value.KindPacket {
			t.Errorf("symbolic-state violation carries a concrete witness: %s", v)
		}
	}
}

func TestExploreBlackHoleClass(t *testing.T) {
	_, net, _ := loadFixture(t, "protected.json")
	// Traffic from h1 to an unrouted destination dies at the lan switch
	// with a no-route constraint witness.
	exp, err := net.Explore("h1", []solver.Term{
		solver.Bin{Op: "==", X: solver.Var{Name: "pkt.dip"}, Y: solver.Const{V: value.Str("203.0.113.7")}},
	}, verify.ExploreOpts{Cache: solver.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Deliveries) != 0 {
		t.Errorf("unrouted class delivered: %v", exp.Deliveries)
	}
	found := false
	for _, b := range exp.BlackHoles {
		if b.Node == "lanswitch" {
			found = true
		}
	}
	if !found {
		t.Errorf("no black-hole recorded at lanswitch: %+v", exp.BlackHoles)
	}
}

func TestParseInvariant(t *testing.T) {
	good := []string{"reach(a,b)", "isolation( a , b )", "waypoint(a,b,c)", "loopfree", "noblackhole"}
	for _, s := range good {
		if _, err := verify.ParseInvariant(s); err != nil {
			t.Errorf("ParseInvariant(%q): %v", s, err)
		}
	}
	bad := []string{"", "reach(a)", "reach(a,b,c)", "waypoint(a,b)", "loopfree(a)", "frob(a,b)", "reach(a,b", "reach(,b)"}
	for _, s := range bad {
		if _, err := verify.ParseInvariant(s); err == nil {
			t.Errorf("ParseInvariant(%q) accepted", s)
		}
	}
}

func TestSymNetworkValidation(t *testing.T) {
	n := verify.NewSymNetwork()
	if err := n.AddHost("a", "1.1.1.1"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddHost("a", "1.1.1.2"); err == nil {
		t.Error("duplicate host accepted")
	}
	if err := n.AddSwitch("a", nil); err == nil {
		t.Error("switch shadowing host accepted")
	}
	if err := n.Link("a", "eth0", "nope"); err == nil {
		t.Error("link to unknown node accepted")
	}
	if err := n.AddSwitch("s", map[string]string{"1.1.1.1": "p"}); err != nil {
		t.Fatal(err)
	}
	if err := n.Link("s", "p", "a"); err != nil {
		t.Fatal(err)
	}
	if err := n.Link("s", "p", "a"); err == nil {
		t.Error("duplicate link accepted")
	}
	if _, err := n.Explore("nope", nil, verify.ExploreOpts{}); err == nil {
		t.Error("explore from unknown node accepted")
	}
}
