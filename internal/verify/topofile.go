// topofile.go defines the JSON topology format consumed by
// `nfverify -topo` and `nflint -topo`: hosts, switches, NF nodes,
// directed links, and the invariants to check. NF nodes name a corpus NF
// (or any program the caller can resolve); the file format stays
// model-agnostic by delegating model/config/state resolution to a
// callback, so this package never depends on the synthesis pipeline.
package verify

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"nfactor/internal/model"
	"nfactor/internal/value"
)

// TopoHost is an endpoint. IP, when set, identifies the host's traffic
// in reach/isolation/waypoint invariants.
type TopoHost struct {
	Name string `json:"name"`
	IP   string `json:"ip,omitempty"`
}

// TopoSwitch is a switch with an exact-match dstIP→iface table.
type TopoSwitch struct {
	Name   string            `json:"name"`
	Routes map[string]string `json:"routes"`
}

// TopoNF is an NF node running the named program.
type TopoNF struct {
	Name string `json:"name"`
	NF   string `json:"nf"`
}

// TopoLink is a directed link: From's out-interface Iface feeds To. The
// interface name becomes pkt.in_iface at a receiving NF, so links into
// an NF must use the interface names its program matches on.
type TopoLink struct {
	From  string `json:"from"`
	Iface string `json:"iface"`
	To    string `json:"to"`
}

// TopoFile is the on-disk topology.
type TopoFile struct {
	Hosts      []TopoHost   `json:"hosts,omitempty"`
	Switches   []TopoSwitch `json:"switches,omitempty"`
	NFs        []TopoNF     `json:"nfs,omitempty"`
	Links      []TopoLink   `json:"links,omitempty"`
	Invariants []string     `json:"invariants,omitempty"`
}

// LoadTopo reads and decodes a topology file.
func LoadTopo(path string) (*TopoFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	return ParseTopo(b)
}

// ParseTopo decodes a topology from JSON bytes.
func ParseTopo(b []byte) (*TopoFile, error) {
	var t TopoFile
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("verify: bad topology: %w", err)
	}
	return &t, nil
}

// NFResolver resolves an NF program name to its synthesized model plus
// the concrete config and initial state to deploy it with.
type NFResolver func(name string) (*model.Model, map[string]value.Value, map[string]value.Value, error)

// Sym builds the symbolic topology.
func (t *TopoFile) Sym(resolve NFResolver) (*SymNetwork, error) {
	n := NewSymNetwork()
	for _, h := range t.Hosts {
		if err := n.AddHost(h.Name, h.IP); err != nil {
			return nil, err
		}
	}
	for _, s := range t.Switches {
		if err := n.AddSwitch(s.Name, s.Routes); err != nil {
			return nil, err
		}
	}
	for _, f := range t.NFs {
		m, cfg, st, err := resolve(f.NF)
		if err != nil {
			return nil, fmt.Errorf("verify: NF node %q: %w", f.Name, err)
		}
		if err := n.AddNF(f.Name, SymNF{Model: m, Config: cfg, State: st}); err != nil {
			return nil, err
		}
	}
	for _, l := range t.Links {
		if err := n.Link(l.From, l.Iface, l.To); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Concrete builds the concrete simulation twin of the topology: same
// nodes and links, NFs instantiated cold (initial state), for replaying
// symbolic witnesses.
func (t *TopoFile) Concrete(resolve NFResolver) (*Network, error) {
	n := NewNetwork()
	for _, h := range t.Hosts {
		n.AddHost(h.Name)
	}
	for _, s := range t.Switches {
		n.AddSwitch(s.Name, s.Routes)
	}
	for _, f := range t.NFs {
		m, cfg, st, err := resolve(f.NF)
		if err != nil {
			return nil, fmt.Errorf("verify: NF node %q: %w", f.Name, err)
		}
		inst, err := model.NewInstance(m, cfg, st)
		if err != nil {
			return nil, fmt.Errorf("verify: NF node %q: %w", f.Name, err)
		}
		n.AddNF(f.Name, inst)
	}
	for _, l := range t.Links {
		if err := n.Link(l.From, l.Iface, l.To); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// ParsedInvariants parses the file's invariant list.
func (t *TopoFile) ParsedInvariants() ([]Invariant, error) {
	out := make([]Invariant, 0, len(t.Invariants))
	for _, s := range t.Invariants {
		inv, err := ParseInvariant(s)
		if err != nil {
			return nil, err
		}
		out = append(out, inv)
	}
	return out, nil
}

// Summary describes the topology in one line.
func (t *TopoFile) Summary() string {
	return fmt.Sprintf("%d host(s), %d switch(es), %d NF(s), %d link(s)",
		len(t.Hosts), len(t.Switches), len(t.NFs), len(t.Links))
}
