package verify_test

import (
	"testing"

	"nfactor/internal/verify"

	"nfactor/internal/value"
)

// TestFullServiceChainTopology wires the paper's composed deployment —
// firewall → IDS → load balancer → backends — as a concrete network of
// synthesized models and drives a realistic client workload through it,
// checking end-to-end invariants:
//
//   - permitted client flows reach exactly one backend,
//   - the LB's NAT rewrites are visible at the backend,
//   - telnet probes die at the IDS,
//   - non-egress-policy traffic dies at the firewall,
//   - unsolicited inbound traffic cannot cross the firewall.
func TestFullServiceChainTopology(t *testing.T) {
	fw := instance(t, analyzed(t, "firewall"))
	ids := instance(t, analyzed(t, "snortlite"))
	lb := instance(t, analyzed(t, "lb"))

	net := verify.NewNetwork()
	net.AddHost("backend1")
	net.AddHost("backend2")
	net.AddHost("blackhole")
	net.AddNF("fw", fw)
	net.AddNF("ids", ids)
	net.AddNF("lb", lb)
	// fw's wan side feeds the IDS; the IDS's clean side feeds the LB; the
	// LB fans out to backends by rewritten destination.
	net.AddSwitch("fabric", map[string]string{
		"1.1.1.1": "b1",
		"2.2.2.2": "b2",
	})
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(net.Link("fw", "wan", "ids"))
	must(net.Link("ids", "eth1", "lb"))
	must(net.Link("lb", "eth0", "fabric"))
	must(net.Link("fabric", "b1", "backend1"))
	must(net.Link("fabric", "b2", "backend2"))

	mk := func(sip string, sport int, dip string, dport int, iface string) value.Value {
		return value.NewPacket(map[string]value.Value{
			"sip": value.Str(sip), "sport": value.Int(int64(sport)),
			"dip": value.Str(dip), "dport": value.Int(int64(dport)),
			"proto": value.Str("tcp"), "flags": value.Str("S"),
			"ttl": value.Int(64), "length": value.Int(0),
			"in_iface": value.Str(iface), "payload": value.Str(""),
		})
	}

	// 1. A permitted web flow (lan → port 80) traverses all three NFs and
	// lands on exactly one backend.
	reached, err := net.Inject("fw", mk("10.0.0.5", 40001, "3.3.3.3", 80, "lan"))
	must(err)
	if len(reached) != 1 || (reached[0] != "backend1" && reached[0] != "backend2") {
		t.Fatalf("web flow reached %v, want exactly one backend", reached)
	}
	first := reached[0]
	delivered, err := net.Delivered(first)
	must(err)
	got := delivered[0].Pkt.Fields
	// The LB rewrote the source to its own address and the destination to
	// the backend.
	if got["sip"].S != "3.3.3.3" {
		t.Errorf("backend sees sip %v, want the LB's address", got["sip"])
	}
	if got["dip"].S != "1.1.1.1" && got["dip"].S != "2.2.2.2" {
		t.Errorf("backend sees dip %v", got["dip"])
	}

	// 2. Round robin: a second flow lands on the other backend.
	net.Reset()
	reached, err = net.Inject("fw", mk("10.0.0.6", 40002, "3.3.3.3", 80, "lan"))
	must(err)
	if len(reached) != 1 || reached[0] == first {
		t.Errorf("second flow reached %v, want the other backend (first was %s)", reached, first)
	}

	// 3. Telnet from inside: the firewall's egress policy has no port 23,
	// so it dies at the first hop.
	net.Reset()
	reached, err = net.Inject("fw", mk("10.0.0.7", 40003, "3.3.3.3", 23, "lan"))
	must(err)
	if len(reached) != 0 {
		t.Errorf("telnet egress reached %v", reached)
	}

	// 4. Telnet injected past the firewall (at the IDS): the IPS drops it.
	reached, err = net.Inject("ids", mk("6.6.6.6", 40004, "3.3.3.3", 23, "eth0"))
	must(err)
	if len(reached) != 0 {
		t.Errorf("telnet past firewall reached %v", reached)
	}

	// 5. Unsolicited inbound at the firewall's wan side goes nowhere.
	reached, err = net.Inject("fw", mk("8.8.8.8", 443, "10.0.0.5", 50000, "wan"))
	must(err)
	if len(reached) != 0 {
		t.Errorf("unsolicited inbound reached %v", reached)
	}

	// 6. Sustained load: every additional permitted flow still lands on
	// exactly one backend, alternating round robin.
	hits := map[string]int{}
	for i := 0; i < 20; i++ {
		net.Reset()
		reached, err = net.Inject("fw", mk("10.0.1.1", 41000+i, "3.3.3.3", 80, "lan"))
		must(err)
		if len(reached) != 1 {
			t.Fatalf("flow %d reached %v", i, reached)
		}
		hits[reached[0]]++
	}
	if hits["backend1"] == 0 || hits["backend2"] == 0 {
		t.Errorf("round robin skew: %v", hits)
	}
}
