// Package verify implements the paper's §4 "Network Verification"
// application: NFactor models plugged into a stateful data-plane
// verifier.
//
// Each model entry acts as a network transfer function T(h, p, s): a
// packet-header class h arriving on port p in NF state s is transformed
// and forwarded (or dropped). Two modes are provided:
//
//   - Symbolic chain reachability (the "extending stateless verification"
//     mode): compose the entries of a service chain symbolically —
//     substitute each hop's header rewrites into the next hop's match —
//     and decide which end-to-end classes are feasible, with witnesses.
//
//   - Concrete network simulation (the troubleshooting mode): a topology
//     of hosts, switches and NF instances that forwards real packets and
//     evolves NF state, used to validate the symbolic verdicts.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"nfactor/internal/model"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// Hop is one NF in a service chain, with a namespace for its state.
// Config, when set, supplies the NF's concrete configuration values:
// chain-level passes ground config variables per hop before composing
// guards, both for precision (comparisons against config constants
// fold) and for correctness (two hops may use the same config name with
// different values; grounding keeps them independent).
type Hop struct {
	Name   string
	Model  *model.Model
	Config map[string]value.Value
}

// Witness is a feasible end-to-end path through a chain: the entry chosen
// at each hop and the combined constraint on the injected packet and the
// hops' states.
type Witness struct {
	Entries []int // entry index per hop
	Conds   []solver.Term
}

// String renders the witness.
func (w Witness) String() string {
	parts := make([]string, len(w.Conds))
	for i, c := range w.Conds {
		parts[i] = c.String()
	}
	return fmt.Sprintf("entries %v under %s", w.Entries, strings.Join(parts, " && "))
}

// ChainReachable enumerates the feasible forwarding compositions of a
// service chain: for every combination of non-drop entries (e1, …, en),
// it rewrites each hop's match through the header transformations of the
// previous hops and checks the conjunction for satisfiability. extra
// constraints (e.g. "pkt.dport == 23") restrict the injected traffic
// class.
func ChainReachable(hops []Hop, extra []solver.Term) ([]Witness, error) {
	if len(hops) == 0 {
		return nil, fmt.Errorf("verify: empty chain")
	}
	var out []Witness
	var rec func(hop int, conds []solver.Term, fields map[string]solver.Term, entries []int)
	rec = func(hop int, conds []solver.Term, fields map[string]solver.Term, entries []int) {
		if hop == len(hops) {
			w := Witness{Entries: append([]int{}, entries...), Conds: append([]solver.Term{}, conds...)}
			out = append(out, w)
			return
		}
		h := hops[hop]
		ns := fmt.Sprintf("%s#%d", h.Name, hop)
		for i := range h.Model.Entries {
			e := &h.Model.Entries[i]
			if e.Dropped() || len(e.Sends) == 0 {
				continue
			}
			// Rewrite the entry's guard: packet fields seen by this hop
			// are the previous hops' outputs; state variables get the
			// hop's namespace.
			guard := e.Guard()
			next := append([]solver.Term{}, conds...)
			ok := true
			for _, g := range guard {
				ng := substituteFields(namespaceState(g, ns), fields)
				ng = solver.Simplify(ng)
				if b, isB := solver.IsConstBool(ng); isB {
					if !b {
						ok = false
						break
					}
					continue
				}
				next = append(next, ng)
			}
			if !ok || !solver.SatConj(next) {
				continue
			}
			// Compose the header transformation for downstream hops.
			send := e.Sends[0]
			nf := make(map[string]solver.Term, len(fields)+len(send.Fields))
			for k, v := range fields {
				nf[k] = v
			}
			for f, t := range send.Fields {
				nf[f] = solver.Simplify(substituteFields(namespaceState(t, ns), fields))
			}
			rec(hop+1, next, nf, append(entries, i))
		}
	}
	rec(0, append([]solver.Term{}, extra...), map[string]solver.Term{}, nil)
	return out, nil
}

// ChainEntryReach decides, for every (hop, entry) pair, whether any injected
// traffic satisfying extra can drive the chain so that the entry fires:
// some choice of forwarding entries at the upstream hops rewrites the
// header into the entry's guard satisfiably. Reachable entries carry a
// witness — the upstream entry indices plus the constraint on the
// injected packet (the feasible side); a nil slot is a solver-checked
// cross-NF dead entry under this chain order. Unlike ChainReachable,
// drop entries are judged too (they just contribute no downstream
// traffic).
func ChainEntryReach(hops []Hop, extra []solver.Term) ([][]*Witness, error) {
	if len(hops) == 0 {
		return nil, fmt.Errorf("verify: empty chain")
	}
	reach := make([][]*Witness, len(hops))
	for i, h := range hops {
		reach[i] = make([]*Witness, len(h.Model.Entries))
	}
	var rec func(hop int, conds []solver.Term, fields map[string]solver.Term, entries []int)
	rec = func(hop int, conds []solver.Term, fields map[string]solver.Term, entries []int) {
		if hop == len(hops) {
			return
		}
		h := hops[hop]
		ns := fmt.Sprintf("%s#%d", h.Name, hop)
		for i := range h.Model.Entries {
			e := &h.Model.Entries[i]
			next := append([]solver.Term{}, conds...)
			ok := true
			for _, g := range e.Guard() {
				ng := solver.Simplify(groundNamed(substituteFields(namespaceState(groundConfig(g, h.Config), ns), fields)))
				if b, isB := solver.IsConstBool(ng); isB {
					if !b {
						ok = false
						break
					}
					continue
				}
				next = append(next, ng)
			}
			if !ok || !solver.SatSplit(next) {
				continue
			}
			if reach[hop][i] == nil {
				reach[hop][i] = &Witness{
					Entries: append(append([]int{}, entries...), i),
					Conds:   append([]solver.Term{}, next...),
				}
			}
			if e.Dropped() || len(e.Sends) == 0 {
				continue
			}
			send := e.Sends[0]
			nf := make(map[string]solver.Term, len(fields)+len(send.Fields))
			for k, v := range fields {
				nf[k] = v
			}
			for f, t := range send.Fields {
				nf[f] = solver.Simplify(groundNamed(substituteFields(namespaceState(groundConfig(t, h.Config), ns), fields)))
			}
			rec(hop+1, next, nf, append(entries, i))
		}
	}
	rec(0, append([]solver.Term{}, extra...), map[string]solver.Term{}, nil)
	return reach, nil
}

// groundConfig replaces config variables by the hop's concrete values.
func groundConfig(t solver.Term, cfg map[string]value.Value) solver.Term {
	if len(cfg) == 0 {
		return t
	}
	switch x := t.(type) {
	case solver.Var:
		if v, ok := cfg[x.Name]; ok {
			return solver.Const{V: v}
		}
		return t
	case solver.MapVar:
		if v, ok := cfg[x.Name]; ok {
			return solver.Const{V: v}
		}
		return t
	case solver.NamedConst:
		return t // already carries its value; groundNamed folds it
	case solver.Bin:
		return solver.Bin{Op: x.Op, X: groundConfig(x.X, cfg), Y: groundConfig(x.Y, cfg)}
	case solver.Un:
		return solver.Un{Op: x.Op, X: groundConfig(x.X, cfg)}
	case solver.Call:
		args := make([]solver.Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = groundConfig(a, cfg)
		}
		return solver.Call{Fn: x.Fn, Args: args}
	case solver.Tuple:
		elems := make([]solver.Term, len(x.Elems))
		for i, e := range x.Elems {
			elems[i] = groundConfig(e, cfg)
		}
		return solver.Tuple{Elems: elems}
	case solver.Index:
		return solver.Index{X: groundConfig(x.X, cfg), I: groundConfig(x.I, cfg)}
	case solver.Select:
		return solver.Select{M: groundConfig(x.M, cfg), K: groundConfig(x.K, cfg)}
	case solver.Store:
		return solver.Store{M: groundConfig(x.M, cfg), K: groundConfig(x.K, cfg), V: groundConfig(x.V, cfg)}
	case solver.Del:
		return solver.Del{M: groundConfig(x.M, cfg), K: groundConfig(x.K, cfg)}
	case solver.In:
		return solver.In{K: groundConfig(x.K, cfg), M: groundConfig(x.M, cfg)}
	default:
		return t
	}
}

// groundNamed replaces NamedConst terms by their concrete values so the
// conjunction checker can fold comparisons against them: a named config
// constant IS a constant for satisfiability purposes (Simplify keeps
// the name elsewhere only for provenance in rendered models).
func groundNamed(t solver.Term) solver.Term {
	switch x := t.(type) {
	case solver.NamedConst:
		return solver.Const{V: x.V}
	case solver.Bin:
		return solver.Bin{Op: x.Op, X: groundNamed(x.X), Y: groundNamed(x.Y)}
	case solver.Un:
		return solver.Un{Op: x.Op, X: groundNamed(x.X)}
	case solver.Call:
		args := make([]solver.Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = groundNamed(a)
		}
		return solver.Call{Fn: x.Fn, Args: args}
	case solver.Tuple:
		elems := make([]solver.Term, len(x.Elems))
		for i, e := range x.Elems {
			elems[i] = groundNamed(e)
		}
		return solver.Tuple{Elems: elems}
	case solver.Index:
		return solver.Index{X: groundNamed(x.X), I: groundNamed(x.I)}
	case solver.Select:
		return solver.Select{M: groundNamed(x.M), K: groundNamed(x.K)}
	case solver.Store:
		return solver.Store{M: groundNamed(x.M), K: groundNamed(x.K), V: groundNamed(x.V)}
	case solver.Del:
		return solver.Del{M: groundNamed(x.M), K: groundNamed(x.K)}
	case solver.In:
		return solver.In{K: groundNamed(x.K), M: groundNamed(x.M)}
	default:
		return t
	}
}

// Blocked reports whether no traffic satisfying extra can traverse the
// whole chain — the isolation check ("packets of class X never reach the
// end").
func Blocked(hops []Hop, extra []solver.Term) (bool, []Witness, error) {
	ws, err := ChainReachable(hops, extra)
	if err != nil {
		return false, nil, err
	}
	return len(ws) == 0, ws, nil
}

// namespaceState prefixes state variable names (x@0, m@0) with the hop's
// namespace so different hops' states stay independent.
func namespaceState(t solver.Term, ns string) solver.Term {
	return solver.Rename(t, func(name string) string {
		if strings.HasSuffix(name, "@0") {
			return ns + ":" + name
		}
		return name
	})
}

// substituteFields replaces pkt.* variables by the upstream header
// transformation terms.
func substituteFields(t solver.Term, fields map[string]solver.Term) solver.Term {
	if len(fields) == 0 {
		return t
	}
	switch x := t.(type) {
	case solver.Var:
		if f, ok := strings.CutPrefix(x.Name, "pkt."); ok {
			if nt, ok := fields[f]; ok {
				return nt
			}
		}
		return t
	case solver.Bin:
		return solver.Bin{Op: x.Op, X: substituteFields(x.X, fields), Y: substituteFields(x.Y, fields)}
	case solver.Un:
		return solver.Un{Op: x.Op, X: substituteFields(x.X, fields)}
	case solver.Call:
		args := make([]solver.Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = substituteFields(a, fields)
		}
		return solver.Call{Fn: x.Fn, Args: args}
	case solver.Tuple:
		elems := make([]solver.Term, len(x.Elems))
		for i, e := range x.Elems {
			elems[i] = substituteFields(e, fields)
		}
		return solver.Tuple{Elems: elems}
	case solver.Index:
		return solver.Index{X: substituteFields(x.X, fields), I: substituteFields(x.I, fields)}
	case solver.Select:
		return solver.Select{M: substituteFields(x.M, fields), K: substituteFields(x.K, fields)}
	case solver.Store:
		return solver.Store{M: substituteFields(x.M, fields), K: substituteFields(x.K, fields), V: substituteFields(x.V, fields)}
	case solver.Del:
		return solver.Del{M: substituteFields(x.M, fields), K: substituteFields(x.K, fields)}
	case solver.In:
		return solver.In{K: substituteFields(x.K, fields), M: substituteFields(x.M, fields)}
	default:
		return t
	}
}

// --- concrete network simulation -------------------------------------

// Network is a concrete topology of named nodes connected by links.
type Network struct {
	nodes map[string]node
	links map[string]map[string]string // node -> out-iface -> peer node
}

type node interface {
	// process consumes a packet and returns the forwarded copies plus a
	// disposition for the packet itself: delivered (host), dropped
	// (explicit NF verdict — including the model's §3.2 implicit drop,
	// which is defined behavior), black-holed (a switch with no route:
	// nothing decided to kill the packet, it just has nowhere to go), or
	// forwarded.
	process(pkt value.Value, inIface string) ([]outPkt, disposition, error)
}

type outPkt struct {
	pkt   value.Value
	iface string
}

// disposition classifies what a node did with a packet.
type disposition int

const (
	dispForwarded disposition = iota
	dispDelivered
	dispDropped
	dispBlackHole
)

// NewNetwork returns an empty topology.
func NewNetwork() *Network {
	return &Network{nodes: map[string]node{}, links: map[string]map[string]string{}}
}

// hostNode records delivered packets.
type hostNode struct{ delivered []value.Value }

func (h *hostNode) process(pkt value.Value, _ string) ([]outPkt, disposition, error) {
	h.delivered = append(h.delivered, pkt)
	return nil, dispDelivered, nil
}

// switchNode forwards by exact destination IP. A destination with no
// route is a black-hole: the switch neither delivers nor explicitly
// drops, the packet just vanishes (the NFL404 condition).
type switchNode struct {
	byDst map[string]string // dst ip -> out iface
}

func (s *switchNode) process(pkt value.Value, _ string) ([]outPkt, disposition, error) {
	dst, ok := pkt.Pkt.Fields["dip"]
	if !ok || dst.Kind != value.KindStr {
		return nil, dispBlackHole, nil
	}
	iface, ok := s.byDst[dst.S]
	if !ok {
		return nil, dispBlackHole, nil
	}
	return []outPkt{{pkt: pkt, iface: iface}}, dispForwarded, nil
}

// nfNode wraps a model instance; the ingress link name becomes the
// packet's in_iface.
type nfNode struct{ inst *model.Instance }

func (n *nfNode) process(pkt value.Value, inIface string) ([]outPkt, disposition, error) {
	p := pkt.Clone()
	// Mid-network hops stamp the ingress link; injected packets keep
	// their preset in_iface.
	if inIface != "" {
		p.Pkt.Fields["in_iface"] = value.Str(inIface)
	}
	out, err := n.inst.Process(p)
	if err != nil {
		return nil, dispDropped, err
	}
	var res []outPkt
	for _, s := range out.Sent {
		res = append(res, outPkt{pkt: s.Pkt, iface: s.Iface})
	}
	if len(res) == 0 {
		return nil, dispDropped, nil
	}
	return res, dispForwarded, nil
}

// AddHost adds an endpoint node.
func (n *Network) AddHost(name string) { n.nodes[name] = &hostNode{} }

// AddSwitch adds a switch with a dstIP→iface forwarding table.
func (n *Network) AddSwitch(name string, byDst map[string]string) {
	n.nodes[name] = &switchNode{byDst: byDst}
}

// AddNF adds an NF node backed by a model instance.
func (n *Network) AddNF(name string, inst *model.Instance) {
	n.nodes[name] = &nfNode{inst: inst}
}

// Link connects from's out-iface to the to node.
func (n *Network) Link(from, iface, to string) error {
	if _, ok := n.nodes[from]; !ok {
		return fmt.Errorf("verify: unknown node %q", from)
	}
	if _, ok := n.nodes[to]; !ok {
		return fmt.Errorf("verify: unknown node %q", to)
	}
	if n.links[from] == nil {
		n.links[from] = map[string]string{}
	}
	n.links[from][iface] = to
	return nil
}

const maxHops = 32

// DeliveredPkt is one packet copy that reached a host, with the node
// path it took (entry node first, host last).
type DeliveredPkt struct {
	Host string
	Pkt  value.Value
	Path []string
}

// BlackHolePkt is one packet copy that vanished without any node
// deciding to drop it: a switch with no route for its destination, or a
// send onto an interface with no link. This is the concrete counterpart
// of the NFL404 diagnostic.
type BlackHolePkt struct {
	Node   string
	Pkt    value.Value
	Path   []string // entry node first, black-holing node last
	Reason string
}

// InjectResult is the full accounting of one injection: every copy ends
// up delivered, explicitly dropped, or black-holed.
type InjectResult struct {
	Delivered  []DeliveredPkt
	BlackHoles []BlackHolePkt
	Dropped    int // copies consumed by an explicit (or §3.2 implicit) NF drop
}

// Hosts returns the sorted distinct hosts that received a copy.
func (r *InjectResult) Hosts() []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range r.Delivered {
		if !seen[d.Host] {
			seen[d.Host] = true
			out = append(out, d.Host)
		}
	}
	sort.Strings(out)
	return out
}

// InjectReport sends pkt into the network at node entry and simulates
// until every copy is delivered, dropped, or black-holed, distinguishing
// the three. Injecting at a host models that host transmitting: the
// packet goes out the host's links (in iface order) rather than being
// self-delivered; a host with no links black-holes its own traffic.
func (n *Network) InjectReport(entry string, pkt value.Value) (*InjectResult, error) {
	if _, ok := n.nodes[entry]; !ok {
		return nil, fmt.Errorf("verify: unknown node %q", entry)
	}
	res := &InjectResult{}
	type inflight struct {
		node    string
		pkt     value.Value
		inIface string
		path    []string
	}
	var work []inflight
	fanOut := func(from string, path []string, outs []outPkt) {
		for i := len(outs) - 1; i >= 0; i-- { // stack: keep DFS in send order
			o := outs[i]
			peer, ok := n.links[from][o.iface]
			if !ok {
				res.BlackHoles = append(res.BlackHoles, BlackHolePkt{
					Node: from, Pkt: o.pkt, Path: path,
					Reason: fmt.Sprintf("send on unconnected interface %q", o.iface),
				})
				continue
			}
			work = append(work, inflight{node: peer, pkt: o.pkt, inIface: o.iface, path: append(path[:len(path):len(path)], peer)})
		}
	}
	entryPath := []string{entry}
	if _, isHost := n.nodes[entry].(*hostNode); isHost {
		ifaces := make([]string, 0, len(n.links[entry]))
		for iface := range n.links[entry] {
			ifaces = append(ifaces, iface)
		}
		sort.Strings(ifaces)
		var outs []outPkt
		for _, iface := range ifaces {
			outs = append(outs, outPkt{pkt: pkt.Clone(), iface: iface})
		}
		if len(outs) == 0 {
			res.BlackHoles = append(res.BlackHoles, BlackHolePkt{
				Node: entry, Pkt: pkt.Clone(), Path: entryPath,
				Reason: "entry host has no links",
			})
		}
		fanOut(entry, entryPath, outs)
	} else {
		work = append(work, inflight{node: entry, pkt: pkt.Clone(), path: entryPath})
	}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		if len(cur.path) > maxHops {
			return nil, fmt.Errorf("verify: hop limit exceeded at %s (forwarding loop?)", strings.Join(cur.path, " -> "))
		}
		nd := n.nodes[cur.node]
		outs, disp, err := nd.process(cur.pkt, cur.inIface)
		if err != nil {
			return nil, fmt.Errorf("verify: node %s: %w", cur.node, err)
		}
		switch disp {
		case dispDelivered:
			res.Delivered = append(res.Delivered, DeliveredPkt{Host: cur.node, Pkt: cur.pkt, Path: cur.path})
		case dispDropped:
			res.Dropped++
		case dispBlackHole:
			res.BlackHoles = append(res.BlackHoles, BlackHolePkt{
				Node: cur.node, Pkt: cur.pkt, Path: cur.path,
				Reason: "no forwarding entry for destination",
			})
		}
		fanOut(cur.node, cur.path, outs)
	}
	return res, nil
}

// Inject sends pkt into the network at node entry and simulates until all
// copies are delivered or dropped. It returns the hosts that received a
// copy (every host with a delivery on record, including earlier
// injections since the last Reset — the original troubleshooting-mode
// contract).
func (n *Network) Inject(entry string, pkt value.Value) ([]string, error) {
	if _, err := n.InjectReport(entry, pkt); err != nil {
		return nil, err
	}
	var reached []string
	for name, nd := range n.nodes {
		if h, ok := nd.(*hostNode); ok && len(h.delivered) > 0 {
			reached = append(reached, name)
		}
	}
	sort.Strings(reached)
	return reached, nil
}

// Delivered returns the packets host has received.
func (n *Network) Delivered(host string) ([]value.Value, error) {
	nd, ok := n.nodes[host]
	if !ok {
		return nil, fmt.Errorf("verify: unknown node %q", host)
	}
	h, ok := nd.(*hostNode)
	if !ok {
		return nil, fmt.Errorf("verify: node %q is not a host", host)
	}
	return h.delivered, nil
}

// Reset clears delivery records (NF state is kept).
func (n *Network) Reset() {
	for _, nd := range n.nodes {
		if h, ok := nd.(*hostNode); ok {
			h.delivered = nil
		}
	}
}
