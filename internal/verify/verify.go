// Package verify implements the paper's §4 "Network Verification"
// application: NFactor models plugged into a stateful data-plane
// verifier.
//
// Each model entry acts as a network transfer function T(h, p, s): a
// packet-header class h arriving on port p in NF state s is transformed
// and forwarded (or dropped). Two modes are provided:
//
//   - Symbolic chain reachability (the "extending stateless verification"
//     mode): compose the entries of a service chain symbolically —
//     substitute each hop's header rewrites into the next hop's match —
//     and decide which end-to-end classes are feasible, with witnesses.
//
//   - Concrete network simulation (the troubleshooting mode): a topology
//     of hosts, switches and NF instances that forwards real packets and
//     evolves NF state, used to validate the symbolic verdicts.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"nfactor/internal/model"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// Hop is one NF in a service chain, with a namespace for its state.
type Hop struct {
	Name  string
	Model *model.Model
}

// Witness is a feasible end-to-end path through a chain: the entry chosen
// at each hop and the combined constraint on the injected packet and the
// hops' states.
type Witness struct {
	Entries []int // entry index per hop
	Conds   []solver.Term
}

// String renders the witness.
func (w Witness) String() string {
	parts := make([]string, len(w.Conds))
	for i, c := range w.Conds {
		parts[i] = c.String()
	}
	return fmt.Sprintf("entries %v under %s", w.Entries, strings.Join(parts, " && "))
}

// ChainReachable enumerates the feasible forwarding compositions of a
// service chain: for every combination of non-drop entries (e1, …, en),
// it rewrites each hop's match through the header transformations of the
// previous hops and checks the conjunction for satisfiability. extra
// constraints (e.g. "pkt.dport == 23") restrict the injected traffic
// class.
func ChainReachable(hops []Hop, extra []solver.Term) ([]Witness, error) {
	if len(hops) == 0 {
		return nil, fmt.Errorf("verify: empty chain")
	}
	var out []Witness
	var rec func(hop int, conds []solver.Term, fields map[string]solver.Term, entries []int)
	rec = func(hop int, conds []solver.Term, fields map[string]solver.Term, entries []int) {
		if hop == len(hops) {
			w := Witness{Entries: append([]int{}, entries...), Conds: append([]solver.Term{}, conds...)}
			out = append(out, w)
			return
		}
		h := hops[hop]
		ns := fmt.Sprintf("%s#%d", h.Name, hop)
		for i := range h.Model.Entries {
			e := &h.Model.Entries[i]
			if e.Dropped() || len(e.Sends) == 0 {
				continue
			}
			// Rewrite the entry's guard: packet fields seen by this hop
			// are the previous hops' outputs; state variables get the
			// hop's namespace.
			guard := e.Guard()
			next := append([]solver.Term{}, conds...)
			ok := true
			for _, g := range guard {
				ng := substituteFields(namespaceState(g, ns), fields)
				ng = solver.Simplify(ng)
				if b, isB := solver.IsConstBool(ng); isB {
					if !b {
						ok = false
						break
					}
					continue
				}
				next = append(next, ng)
			}
			if !ok || !solver.SatConj(next) {
				continue
			}
			// Compose the header transformation for downstream hops.
			send := e.Sends[0]
			nf := make(map[string]solver.Term, len(fields)+len(send.Fields))
			for k, v := range fields {
				nf[k] = v
			}
			for f, t := range send.Fields {
				nf[f] = solver.Simplify(substituteFields(namespaceState(t, ns), fields))
			}
			rec(hop+1, next, nf, append(entries, i))
		}
	}
	rec(0, append([]solver.Term{}, extra...), map[string]solver.Term{}, nil)
	return out, nil
}

// Blocked reports whether no traffic satisfying extra can traverse the
// whole chain — the isolation check ("packets of class X never reach the
// end").
func Blocked(hops []Hop, extra []solver.Term) (bool, []Witness, error) {
	ws, err := ChainReachable(hops, extra)
	if err != nil {
		return false, nil, err
	}
	return len(ws) == 0, ws, nil
}

// namespaceState prefixes state variable names (x@0, m@0) with the hop's
// namespace so different hops' states stay independent.
func namespaceState(t solver.Term, ns string) solver.Term {
	return solver.Rename(t, func(name string) string {
		if strings.HasSuffix(name, "@0") {
			return ns + ":" + name
		}
		return name
	})
}

// substituteFields replaces pkt.* variables by the upstream header
// transformation terms.
func substituteFields(t solver.Term, fields map[string]solver.Term) solver.Term {
	if len(fields) == 0 {
		return t
	}
	switch x := t.(type) {
	case solver.Var:
		if f, ok := strings.CutPrefix(x.Name, "pkt."); ok {
			if nt, ok := fields[f]; ok {
				return nt
			}
		}
		return t
	case solver.Bin:
		return solver.Bin{Op: x.Op, X: substituteFields(x.X, fields), Y: substituteFields(x.Y, fields)}
	case solver.Un:
		return solver.Un{Op: x.Op, X: substituteFields(x.X, fields)}
	case solver.Call:
		args := make([]solver.Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = substituteFields(a, fields)
		}
		return solver.Call{Fn: x.Fn, Args: args}
	case solver.Tuple:
		elems := make([]solver.Term, len(x.Elems))
		for i, e := range x.Elems {
			elems[i] = substituteFields(e, fields)
		}
		return solver.Tuple{Elems: elems}
	case solver.Index:
		return solver.Index{X: substituteFields(x.X, fields), I: substituteFields(x.I, fields)}
	case solver.Select:
		return solver.Select{M: substituteFields(x.M, fields), K: substituteFields(x.K, fields)}
	case solver.Store:
		return solver.Store{M: substituteFields(x.M, fields), K: substituteFields(x.K, fields), V: substituteFields(x.V, fields)}
	case solver.Del:
		return solver.Del{M: substituteFields(x.M, fields), K: substituteFields(x.K, fields)}
	case solver.In:
		return solver.In{K: substituteFields(x.K, fields), M: substituteFields(x.M, fields)}
	default:
		return t
	}
}

// --- concrete network simulation -------------------------------------

// Network is a concrete topology of named nodes connected by links.
type Network struct {
	nodes map[string]node
	links map[string]map[string]string // node -> out-iface -> peer node
}

type node interface {
	process(pkt value.Value, inIface string) ([]outPkt, error)
}

type outPkt struct {
	pkt   value.Value
	iface string
}

// NewNetwork returns an empty topology.
func NewNetwork() *Network {
	return &Network{nodes: map[string]node{}, links: map[string]map[string]string{}}
}

// hostNode records delivered packets.
type hostNode struct{ delivered []value.Value }

func (h *hostNode) process(pkt value.Value, _ string) ([]outPkt, error) {
	h.delivered = append(h.delivered, pkt)
	return nil, nil
}

// switchNode forwards by exact destination IP, flooding unknown
// destinations nowhere (dropping).
type switchNode struct {
	byDst map[string]string // dst ip -> out iface
}

func (s *switchNode) process(pkt value.Value, _ string) ([]outPkt, error) {
	dst, ok := pkt.Pkt.Fields["dip"]
	if !ok || dst.Kind != value.KindStr {
		return nil, nil
	}
	iface, ok := s.byDst[dst.S]
	if !ok {
		return nil, nil
	}
	return []outPkt{{pkt: pkt, iface: iface}}, nil
}

// nfNode wraps a model instance; the ingress link name becomes the
// packet's in_iface.
type nfNode struct{ inst *model.Instance }

func (n *nfNode) process(pkt value.Value, inIface string) ([]outPkt, error) {
	p := pkt.Clone()
	// Mid-network hops stamp the ingress link; injected packets keep
	// their preset in_iface.
	if inIface != "" {
		p.Pkt.Fields["in_iface"] = value.Str(inIface)
	}
	out, err := n.inst.Process(p)
	if err != nil {
		return nil, err
	}
	var res []outPkt
	for _, s := range out.Sent {
		res = append(res, outPkt{pkt: s.Pkt, iface: s.Iface})
	}
	return res, nil
}

// AddHost adds an endpoint node.
func (n *Network) AddHost(name string) { n.nodes[name] = &hostNode{} }

// AddSwitch adds a switch with a dstIP→iface forwarding table.
func (n *Network) AddSwitch(name string, byDst map[string]string) {
	n.nodes[name] = &switchNode{byDst: byDst}
}

// AddNF adds an NF node backed by a model instance.
func (n *Network) AddNF(name string, inst *model.Instance) {
	n.nodes[name] = &nfNode{inst: inst}
}

// Link connects from's out-iface to the to node.
func (n *Network) Link(from, iface, to string) error {
	if _, ok := n.nodes[from]; !ok {
		return fmt.Errorf("verify: unknown node %q", from)
	}
	if _, ok := n.nodes[to]; !ok {
		return fmt.Errorf("verify: unknown node %q", to)
	}
	if n.links[from] == nil {
		n.links[from] = map[string]string{}
	}
	n.links[from][iface] = to
	return nil
}

const maxHops = 32

// Inject sends pkt into the network at node entry and simulates until all
// copies are delivered or dropped. It returns the hosts that received a
// copy.
func (n *Network) Inject(entry string, pkt value.Value) ([]string, error) {
	type inflight struct {
		node    string
		pkt     value.Value
		inIface string
		hops    int
	}
	work := []inflight{{node: entry, pkt: pkt.Clone()}}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		if cur.hops > maxHops {
			return nil, fmt.Errorf("verify: hop limit exceeded (forwarding loop?)")
		}
		nd, ok := n.nodes[cur.node]
		if !ok {
			return nil, fmt.Errorf("verify: unknown node %q", cur.node)
		}
		outs, err := nd.process(cur.pkt, cur.inIface)
		if err != nil {
			return nil, fmt.Errorf("verify: node %s: %w", cur.node, err)
		}
		for _, o := range outs {
			peer, ok := n.links[cur.node][o.iface]
			if !ok {
				continue // unconnected interface: packet leaves the world
			}
			work = append(work, inflight{node: peer, pkt: o.pkt, inIface: o.iface, hops: cur.hops + 1})
		}
	}
	var reached []string
	for name, nd := range n.nodes {
		if h, ok := nd.(*hostNode); ok && len(h.delivered) > 0 {
			reached = append(reached, name)
		}
	}
	sort.Strings(reached)
	return reached, nil
}

// Delivered returns the packets host has received.
func (n *Network) Delivered(host string) ([]value.Value, error) {
	nd, ok := n.nodes[host]
	if !ok {
		return nil, fmt.Errorf("verify: unknown node %q", host)
	}
	h, ok := nd.(*hostNode)
	if !ok {
		return nil, fmt.Errorf("verify: node %q is not a host", host)
	}
	return h.delivered, nil
}

// Reset clears delivery records (NF state is kept).
func (n *Network) Reset() {
	for _, nd := range n.nodes {
		if h, ok := nd.(*hostNode); ok {
			h.delivered = nil
		}
	}
}
