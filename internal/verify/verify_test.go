package verify_test

import (
	"testing"

	"nfactor/internal/verify"

	"nfactor/internal/core"
	"nfactor/internal/model"
	"nfactor/internal/nfs"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

func analyzed(t *testing.T, name string) *core.Analysis {
	t.Helper()
	nf := nfs.MustLoad(name)
	an, err := core.Analyze(name, nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func instance(t *testing.T, an *core.Analysis) *model.Instance {
	t.Helper()
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(an.Model, config, state)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func iv(i int64) solver.Term  { return solver.Const{V: value.Int(i)} }
func sv(s string) solver.Term { return solver.Const{V: value.Str(s)} }
func pf(f string) solver.Term { return solver.Var{Name: "pkt." + f} }

func TestChainReachableSnortlitePassClass(t *testing.T) {
	snort := analyzed(t, "snortlite")
	hops := []verify.Hop{{Name: "ids", Model: snort.Model}}
	// Benign traffic (port 8080, no SYN) can traverse.
	ws, err := verify.ChainReachable(hops, []solver.Term{
		solver.Bin{Op: "==", X: pf("dport"), Y: iv(8080)},
		solver.Bin{Op: "==", X: pf("proto"), Y: sv("tcp")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Error("benign traffic class found unreachable through snortlite")
	}
}

func TestChainBlockedTelnetThroughIPS(t *testing.T) {
	snort := analyzed(t, "snortlite")
	hops := []verify.Hop{{Name: "ips", Model: snort.Model}}
	// In IPS mode, telnet (tcp/23) must be blocked end-to-end.
	blocked, ws, err := verify.Blocked(hops, []solver.Term{
		solver.Bin{Op: "==", X: pf("dport"), Y: iv(23)},
		solver.Bin{Op: "==", X: pf("proto"), Y: sv("tcp")},
		solver.Bin{Op: "==", X: solver.Var{Name: "mode"}, Y: sv("IPS")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !blocked {
		t.Errorf("telnet class traverses snortlite in IPS mode: %v", ws)
	}
	// In IDS mode it passes (alert only).
	blocked, _, err = verify.Blocked(hops, []solver.Term{
		solver.Bin{Op: "==", X: pf("dport"), Y: iv(23)},
		solver.Bin{Op: "==", X: pf("proto"), Y: sv("tcp")},
		solver.Bin{Op: "==", X: solver.Var{Name: "mode"}, Y: sv("IDS")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if blocked {
		t.Error("telnet class blocked in IDS mode")
	}
}

func TestChainOrderingLBBeforeIDSHidesPorts(t *testing.T) {
	// The paper's composition question: with the LB in front, the IDS
	// sees rewritten destination ports. Traffic aimed at the LB VIP port
	// (80) that the LB maps to backend port 80 stays clean — but the IDS
	// can no longer see the ORIGINAL client-chosen source port, because
	// the LB rewrote addresses. We verify the weaker, crisply checkable
	// property: the telnet-blocking IDS entry is unreachable behind the
	// LB (the LB only ever emits dport 80 traffic for client flows).
	lb := analyzed(t, "lb")
	snort := analyzed(t, "snortlite")
	hops := []verify.Hop{
		{Name: "lb", Model: lb.Model},
		{Name: "ids", Model: snort.Model},
	}
	ws, err := verify.ChainReachable(hops, []solver.Term{
		solver.Bin{Op: "==", X: pf("proto"), Y: sv("tcp")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("nothing traverses lb→ids")
	}
	// No witness may use the IDS's telnet-alert entry: after the LB, the
	// destination port is the backend's (80), never 23.
	for _, w := range ws {
		idsEntry := snort.Model.Entries[w.Entries[1]]
		for _, c := range idsEntry.Guard() {
			s := c.String()
			if s == `(pkt.dport == 23)` {
				t.Errorf("telnet entry reachable behind LB: %v", w)
			}
		}
	}
}

func TestNetworkSimulationFirewall(t *testing.T) {
	fw := analyzed(t, "firewall")
	inst := instance(t, fw)

	net := verify.NewNetwork()
	net.AddHost("inside")
	net.AddHost("outside")
	net.AddNF("fw", inst)
	if err := net.Link("fw", "wan", "outside"); err != nil {
		t.Fatal(err)
	}
	if err := net.Link("fw", "lan", "inside"); err != nil {
		t.Fatal(err)
	}

	mk := func(iface, sip string, sport int64, dip string, dport int64) value.Value {
		return value.NewPacket(map[string]value.Value{
			"in_iface": value.Str(iface),
			"sip":      value.Str(sip), "sport": value.Int(sport),
			"dip": value.Str(dip), "dport": value.Int(dport),
			"proto": value.Str("tcp"), "flags": value.Str("S"),
		})
	}

	// Unsolicited inbound: must reach nobody.
	reached, err := net.Inject("fw", mk("wan", "8.8.8.8", 443, "10.0.0.5", 50000))
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 0 {
		t.Errorf("unsolicited inbound reached %v", reached)
	}

	// Outbound opens state, then the reverse packet reaches inside.
	if _, err := net.Inject("fw", mk("lan", "10.0.0.5", 50000, "8.8.8.8", 443)); err != nil {
		t.Fatal(err)
	}
	net.Reset()
	reached, err = net.Inject("fw", mk("wan", "8.8.8.8", 443, "10.0.0.5", 50000))
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 1 || reached[0] != "inside" {
		t.Errorf("established reverse flow reached %v, want [inside]", reached)
	}
	got, err := net.Delivered("inside")
	if err != nil || len(got) != 1 {
		t.Fatalf("delivered = %v, %v", got, err)
	}
}

func TestNetworkSwitchForwarding(t *testing.T) {
	net := verify.NewNetwork()
	net.AddHost("a")
	net.AddHost("b")
	net.AddSwitch("sw", map[string]string{"10.0.0.1": "p1", "10.0.0.2": "p2"})
	_ = net.Link("sw", "p1", "a")
	_ = net.Link("sw", "p2", "b")
	pkt := value.NewPacket(map[string]value.Value{
		"sip": value.Str("9.9.9.9"), "dip": value.Str("10.0.0.2"),
		"sport": value.Int(1), "dport": value.Int(2),
		"proto": value.Str("tcp"), "flags": value.Str(""),
	})
	reached, err := net.Inject("sw", pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 1 || reached[0] != "b" {
		t.Errorf("reached = %v", reached)
	}
	// Unknown destination drops.
	pkt.Pkt.Fields["dip"] = value.Str("1.2.3.4")
	net.Reset()
	reached, _ = net.Inject("sw", pkt)
	if len(reached) != 0 {
		t.Errorf("unknown dst reached %v", reached)
	}
}

func TestNetworkErrors(t *testing.T) {
	net := verify.NewNetwork()
	net.AddHost("a")
	if err := net.Link("a", "x", "nope"); err == nil {
		t.Error("link to unknown node did not error")
	}
	if _, err := net.Inject("nope", value.NewPacket(nil)); err == nil {
		t.Error("inject at unknown node did not error")
	}
	if _, err := net.Delivered("nope"); err == nil {
		t.Error("delivered of unknown node did not error")
	}
	if _, err := verify.ChainReachable(nil, nil); err == nil {
		t.Error("empty chain did not error")
	}
}

func TestSymbolicAgreesWithConcrete(t *testing.T) {
	// The symbolic verdict "telnet blocked in IPS mode" must agree with
	// concrete simulation.
	snort := analyzed(t, "snortlite")
	inst := instance(t, snort)
	net := verify.NewNetwork()
	net.AddHost("server")
	net.AddNF("ips", inst)
	_ = net.Link("ips", "eth1", "server")

	telnet := value.NewPacket(map[string]value.Value{
		"in_iface": value.Str("eth0"),
		"sip":      value.Str("6.6.6.6"), "sport": value.Int(40000),
		"dip": value.Str("10.0.0.7"), "dport": value.Int(23),
		"proto": value.Str("tcp"), "flags": value.Str(""),
		"ttl": value.Int(64), "length": value.Int(100),
	})
	reached, err := net.Inject("ips", telnet)
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 0 {
		t.Errorf("concrete simulation let telnet through: %v", reached)
	}
}
