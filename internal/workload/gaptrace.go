// gaptrace.go turns the NFL103 match-space gap analysis into workload:
// lint.GapWitness proves a packet/state class that no model entry
// matches, and GapTrace concretizes members of that class into packets.
// Every packet in the trace is guaranteed (solver-proved class, then
// validated by concrete guard evaluation) to fall through to the §3.2
// implicit drop — the adversarial complement of the model-guided buzz
// suite, which aims at entries instead of between them.
package workload

import (
	"nfactor/internal/buzz"
	"nfactor/internal/lint"
	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/value"
)

// gapSynthTries bounds the randomized completions per packet. The gap
// class is satisfiable by construction, but individual literals may need
// many draws to hit (e.g. a negated membership over a large set).
const gapSynthTries = 256

// GapTrace returns up to n packets inside the model's match-space gap
// under the given config and initial state, or nil when the entries
// cover the space (no NFL103 finding) or no member can be concretized.
// Replaying the trace against a cold instance must leave every entry
// unfired; TestGapTraceHitsDefaultAction pins that corpus-wide.
func (g *Gen) GapTrace(m *model.Model, config, state map[string]value.Value, n int) []netpkt.Packet {
	witness := lint.GapWitness(m, 0)
	if witness == nil {
		return nil
	}
	var out []netpkt.Packet
	for i := 0; i < n; i++ {
		v := buzz.Synthesize(witness, state, config, g.rng, gapSynthTries)
		if v.Kind != value.KindPacket {
			continue // this draw found no member; later seeds may
		}
		p, err := netpkt.FromValue(v)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}
