package workload

import (
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/model"
	"nfactor/internal/nfs"
)

// TestGapTraceHitsDefaultAction replays every gap-trace packet against a
// cold instance of each corpus model and requires the implicit default
// drop (fired entry -1) every time — the trace lives strictly between
// the entries, which is its whole point.
//
// The corpus models cover their match spaces (every else-branch
// synthesizes to an explicit drop entry, so nflint reports no NFL103),
// which is itself asserted below. To exercise the gap machinery on real
// corpus models, the explicit drop entries are pruned away — the
// forwarding entries alone leave exactly the gap the drops used to
// cover, and its members must fall to the pruned model's implicit
// default.
func TestGapTraceHitsDefaultAction(t *testing.T) {
	withGap := 0
	for _, name := range nfs.Names() {
		nf := nfs.MustLoad(name)
		an, err := core.Analyze(name, nf.Prog, core.Options{})
		if err != nil {
			continue // not synthesizable: nothing to trace
		}
		config, state, err := an.ConfigAndState(nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := New(11).GapTrace(an.Model, config, state, 4); got != nil {
			t.Errorf("%s: full corpus model unexpectedly has a match gap (lint corpus is NFL103-clean)", name)
		}
		pruned := &model.Model{
			NFName: an.Model.NFName, PktVar: an.Model.PktVar,
			CfgVars: an.Model.CfgVars, OISVars: an.Model.OISVars,
		}
		for _, e := range an.Model.Entries {
			if !e.Dropped() {
				pruned.Entries = append(pruned.Entries, e)
			}
		}
		trace := New(11).GapTrace(pruned, config, state, 32)
		if len(trace) == 0 {
			continue // forwarding entries cover the space, or no member concretized
		}
		withGap++
		for i, p := range trace {
			// Fresh instance per packet: a gap packet must not fire an
			// entry, so state never advances, but the test should not
			// depend on that.
			inst, err := model.NewInstance(pruned, config, state)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			_, fired, err := inst.ProcessTraced(p.ToValue())
			if err != nil {
				t.Fatalf("%s: gap packet %d (%s): %v", name, i, p, err)
			}
			if fired != -1 {
				t.Errorf("%s: gap packet %d (%s) fired entry %d, want default drop", name, i, p, fired)
			}
		}
	}
	if withGap == 0 {
		t.Fatal("no corpus NF produced a gap trace; the test exercised nothing")
	}
}

// TestGapTraceDeterministicBySeed pins that gap traces are reproducible.
func TestGapTraceDeterministicBySeed(t *testing.T) {
	nf := nfs.MustLoad("firewall")
	an, err := core.Analyze("firewall", nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	pruned := &model.Model{NFName: an.Model.NFName, PktVar: an.Model.PktVar}
	for _, e := range an.Model.Entries {
		if !e.Dropped() {
			pruned.Entries = append(pruned.Entries, e)
		}
	}
	a := New(3).GapTrace(pruned, config, state, 8)
	b := New(3).GapTrace(pruned, config, state, 8)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("trace lengths %d vs %d, want equal and nonzero", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("packet %d differs between identical seeds", i)
		}
	}
}
