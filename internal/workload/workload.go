// Package workload generates synthetic packet traces for the paper's §5
// accuracy experiment ("we generate random inputs (i.e., packets) to both
// NFactor model and the original program") and for the application
// benchmarks. All generators are seeded and deterministic.
package workload

import (
	"fmt"
	"math/rand"

	"nfactor/internal/netpkt"
)

// Gen is a deterministic trace generator.
type Gen struct {
	rng *rand.Rand
}

// New returns a generator with the given seed.
func New(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

var protos = []string{"tcp", "tcp", "tcp", "udp", "icmp"}
var flagPool = []string{"", "S", "SA", "A", "FA", "R", "PA"}

// payloadPool mixes benign content with the attack signatures the DPI
// corpus NF matches on, so random traces exercise both verdicts.
var payloadPool = []string{
	"", "GET / HTTP/1.1", "POST /login", "hello world",
	"SELECT * FROM users", "cat /etc/passwd", "\\x90\\x90\\x90 shellcode",
	"binary\x00data", "{\"json\": true}",
}

func (g *Gen) ip() string {
	return fmt.Sprintf("%d.%d.%d.%d",
		1+g.rng.Intn(223), g.rng.Intn(256), g.rng.Intn(256), 1+g.rng.Intn(254))
}

func (g *Gen) port() int { return 1 + g.rng.Intn(65535) }

// Random returns one uniformly random packet.
func (g *Gen) Random() netpkt.Packet {
	return netpkt.Packet{
		SrcIP:   g.ip(),
		DstIP:   g.ip(),
		SrcPort: g.port(),
		DstPort: g.port(),
		Proto:   protos[g.rng.Intn(len(protos))],
		Flags:   flagPool[g.rng.Intn(len(flagPool))],
		TTL:     1 + g.rng.Intn(255),
		Length:  g.rng.Intn(1460),
		Payload: payloadPool[g.rng.Intn(len(payloadPool))],
		InIface: "eth0",
	}
}

// RandomTrace returns n uniformly random packets.
func (g *Gen) RandomTrace(n int) []netpkt.Packet {
	out := make([]netpkt.Packet, n)
	for i := range out {
		out[i] = g.Random()
	}
	return out
}

// ClientServerTrace generates traffic toward a service VIP:port — the
// workload an L4 load balancer sees. A fraction of packets are reverse
// (server→client) packets of earlier flows; a small fraction are strays
// that belong to no established flow.
func (g *Gen) ClientServerTrace(vip string, port, n int) []netpkt.Packet {
	var out []netpkt.Packet
	var forward []netpkt.Packet
	for len(out) < n {
		switch {
		case len(forward) > 0 && g.rng.Intn(100) < 30:
			// Reverse packet of a previously seen forward flow, as the
			// backend would answer through the LB.
			fw := forward[g.rng.Intn(len(forward))]
			out = append(out, netpkt.Packet{
				SrcIP: fw.DstIP, DstIP: fw.SrcIP,
				SrcPort: fw.DstPort, DstPort: fw.SrcPort,
				Proto: "tcp", Flags: "A", TTL: 64, Length: g.rng.Intn(1460), InIface: "eth0",
			})
		case g.rng.Intn(100) < 10:
			// Stray reverse traffic with no forward flow (must be dropped
			// by the LB).
			out = append(out, netpkt.Packet{
				SrcIP: g.ip(), DstIP: g.ip(),
				SrcPort: port + 1, DstPort: g.port(),
				Proto: "tcp", Flags: "A", TTL: 64, Length: 0, InIface: "eth0",
			})
		default:
			p := netpkt.Packet{
				SrcIP: g.ip(), DstIP: vip,
				SrcPort: g.port(), DstPort: port,
				Proto: "tcp", Flags: "S", TTL: 64, Length: 0, InIface: "eth0",
			}
			forward = append(forward, p)
			out = append(out, p)
			// Follow-on packets of the same flow with some probability.
			for g.rng.Intn(100) < 50 && len(out) < n {
				q := p
				q.Flags = "A"
				q.Length = g.rng.Intn(1460)
				out = append(out, q)
			}
		}
	}
	return out[:n]
}

// FlowTrace generates nFlows TCP flows with a 3-way handshake and
// pktsPerFlow data packets each, interleaved round-robin — the stateful
// firewall / TCP-unfolding workload.
func (g *Gen) FlowTrace(nFlows, pktsPerFlow int) []netpkt.Packet {
	type fl struct {
		f    netpkt.Flow
		sent int
	}
	flows := make([]*fl, nFlows)
	for i := range flows {
		flows[i] = &fl{f: netpkt.Flow{
			SrcIP: g.ip(), SrcPort: g.port(),
			DstIP: g.ip(), DstPort: []int{80, 443, 22, 8080}[g.rng.Intn(4)],
			Proto: "tcp",
		}}
	}
	var out []netpkt.Packet
	mk := func(f netpkt.Flow, flags string, length int) netpkt.Packet {
		return netpkt.Packet{
			SrcIP: f.SrcIP, SrcPort: f.SrcPort, DstIP: f.DstIP, DstPort: f.DstPort,
			Proto: "tcp", Flags: flags, TTL: 64, Length: length, InIface: "eth0",
		}
	}
	total := nFlows * (pktsPerFlow + 3)
	for len(out) < total {
		for _, fl := range flows {
			if len(out) >= total {
				break
			}
			switch {
			case fl.sent == 0:
				out = append(out, mk(fl.f, "S", 0))
			case fl.sent == 1:
				out = append(out, mk(fl.f.Reverse(), "SA", 0))
			case fl.sent == 2:
				out = append(out, mk(fl.f, "A", 0))
			default:
				// Data in a random direction.
				d := fl.f
				if g.rng.Intn(2) == 1 {
					d = d.Reverse()
				}
				out = append(out, mk(d, "PA", 1+g.rng.Intn(1400)))
			}
			fl.sent++
		}
	}
	return out
}

// AdversarialTrace stresses NF edge cases: repeated tuples, reverse
// packets with no forward flow, zero TTLs, port-0 and max-port packets,
// and malformed (empty-proto) packets.
func (g *Gen) AdversarialTrace(n int) []netpkt.Packet {
	base := g.Random()
	var out []netpkt.Packet
	for i := 0; len(out) < n; i++ {
		switch i % 6 {
		case 0:
			out = append(out, base) // exact repeat → state-hit path
		case 1:
			p := base
			p.SrcIP, p.DstIP = p.DstIP, p.SrcIP
			p.SrcPort, p.DstPort = p.DstPort, p.SrcPort
			out = append(out, p) // reverse without forward state
		case 2:
			p := g.Random()
			p.TTL = 0
			out = append(out, p)
		case 3:
			p := g.Random()
			p.SrcPort, p.DstPort = 0, 65535
			out = append(out, p)
		case 4:
			p := g.Random()
			p.Proto = ""
			out = append(out, p) // malformed
		default:
			out = append(out, g.Random())
		}
	}
	return out[:n]
}

// ZipfOpts shapes SkewedTrace. Zero values pick sensible defaults.
type ZipfOpts struct {
	// Flows is the size of the active flow set (default 64).
	Flows int
	// Skew is the Zipf s parameter; rank r is drawn with probability
	// proportional to 1/(r+1)^s (default 1.2 — a few elephant flows,
	// a long mouse tail).
	Skew float64
	// Churn is the per-packet probability that the drawn flow is
	// retired and replaced by a fresh one mid-trace (default 0).
	Churn float64
	// VIP/Port, when set, aim every flow at one service endpoint — the
	// workload a load balancer or NAT gateway sees. Packets then flow
	// client→service only, for closed-loop drivers that synthesize the
	// replies themselves.
	VIP  string
	Port int
	// MaxPort bounds client source ports (exclusive, default 10000,
	// minimum 1025): flow identifiers stay clear of the port ranges NF
	// allocators hand out, so an allocated port is never confused with
	// a client's.
	MaxPort int
}

func (o *ZipfOpts) defaults() {
	if o.Flows <= 0 {
		o.Flows = 64
	}
	if o.Skew <= 1 {
		o.Skew = 1.2
	}
	if o.Port == 0 {
		o.Port = 80
	}
	if o.MaxPort <= 1024 {
		o.MaxPort = 10000
	}
}

// SkewedTrace generates n packets whose flow popularity follows a Zipf
// distribution over a churning active set — the realistic-skew scaling
// workload: a handful of hot flows hammer their shard while the tail
// spreads. Each flow opens with a SYN and continues with data packets,
// so stateful NFs see a plausible per-flow lifecycle.
func (g *Gen) SkewedTrace(n int, o ZipfOpts) []netpkt.Packet {
	o.defaults()
	zipf := rand.NewZipf(g.rng, o.Skew, 1, uint64(o.Flows-1))
	clientPort := func() int { return 1024 + g.rng.Intn(o.MaxPort-1024) }
	fresh := func() netpkt.Flow {
		f := netpkt.Flow{SrcIP: g.ip(), SrcPort: clientPort(), Proto: "tcp"}
		if o.VIP != "" {
			f.DstIP, f.DstPort = o.VIP, o.Port
		} else {
			f.DstIP, f.DstPort = g.ip(), []int{80, 443, 22, 8080}[g.rng.Intn(4)]
		}
		return f
	}
	type slot struct {
		f    netpkt.Flow
		sent int
	}
	slots := make([]slot, o.Flows)
	for i := range slots {
		slots[i] = slot{f: fresh()}
	}
	out := make([]netpkt.Packet, 0, n)
	for len(out) < n {
		s := &slots[zipf.Uint64()]
		if o.Churn > 0 && g.rng.Float64() < o.Churn {
			*s = slot{f: fresh()}
		}
		p := netpkt.Packet{
			SrcIP: s.f.SrcIP, SrcPort: s.f.SrcPort,
			DstIP: s.f.DstIP, DstPort: s.f.DstPort,
			Proto: "tcp", TTL: 64, InIface: "eth0",
		}
		if s.sent == 0 {
			p.Flags, p.Length = "S", 0
		} else {
			p.Flags, p.Length = "PA", 1+g.rng.Intn(1400)
		}
		s.sent++
		out = append(out, p)
	}
	return out
}
