package workload

import (
	"testing"

	"nfactor/internal/netpkt"
)

func TestDeterministicBySeed(t *testing.T) {
	a := New(7).RandomTrace(50)
	b := New(7).RandomTrace(50)
	for i := range a {
		if !netpkt.Equal(a[i], b[i]) {
			t.Fatalf("packet %d differs between identical seeds", i)
		}
	}
	c := New(8).RandomTrace(50)
	same := true
	for i := range a {
		if !netpkt.Equal(a[i], c[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestRandomTraceFieldsValid(t *testing.T) {
	for _, p := range New(1).RandomTrace(200) {
		if p.SrcPort < 1 || p.SrcPort > 65535 || p.DstPort < 1 || p.DstPort > 65535 {
			t.Fatalf("bad ports: %+v", p)
		}
		if p.Proto == "" || p.SrcIP == "" || p.DstIP == "" {
			t.Fatalf("missing fields: %+v", p)
		}
		if p.TTL < 1 || p.TTL > 256 {
			t.Fatalf("bad ttl: %+v", p)
		}
	}
}

func TestClientServerTrace(t *testing.T) {
	trace := New(3).ClientServerTrace("9.9.9.9", 80, 400)
	if len(trace) != 400 {
		t.Fatalf("len = %d", len(trace))
	}
	toVIP, reverse := 0, 0
	for _, p := range trace {
		if p.DstIP == "9.9.9.9" && p.DstPort == 80 {
			toVIP++
		}
		if p.SrcPort == 80 {
			reverse++
		}
	}
	if toVIP == 0 {
		t.Error("no packets to the VIP")
	}
	if reverse == 0 {
		t.Error("no reverse packets")
	}
}

func TestFlowTraceHandshake(t *testing.T) {
	trace := New(5).FlowTrace(3, 4)
	if len(trace) != 3*(4+3) {
		t.Fatalf("len = %d", len(trace))
	}
	// Each flow starts with SYN before any data packet of that flow.
	seenSyn := map[string]bool{}
	for _, p := range trace {
		key := p.Flow().Key()
		rkey := p.Flow().Reverse().Key()
		switch {
		case p.Flags == "S":
			seenSyn[key] = true
		case p.Flags == "PA":
			if !seenSyn[key] && !seenSyn[rkey] {
				t.Fatalf("data before SYN for %s", key)
			}
		}
	}
}

func TestAdversarialTraceCoversEdgeCases(t *testing.T) {
	trace := New(9).AdversarialTrace(60)
	if len(trace) != 60 {
		t.Fatalf("len = %d", len(trace))
	}
	var zeroTTL, malformed, repeat bool
	seen := map[string]int{}
	for _, p := range trace {
		if p.TTL == 0 {
			zeroTTL = true
		}
		if p.Proto == "" {
			malformed = true
		}
		seen[p.Canonical()]++
	}
	for _, n := range seen {
		if n > 1 {
			repeat = true
		}
	}
	if !zeroTTL || !malformed || !repeat {
		t.Errorf("missing edge cases: zeroTTL=%v malformed=%v repeat=%v", zeroTTL, malformed, repeat)
	}
}

// TestSkewedTraceDeterministic pins the Zipf/churn generator: identical
// seeds and options reproduce the trace bit for bit, the popularity
// distribution is actually skewed, churn actually retires flows, and
// client ports respect the allocator-range bound.
func TestSkewedTraceDeterministic(t *testing.T) {
	opts := ZipfOpts{Flows: 32, Skew: 1.3, Churn: 0.02, VIP: "10.0.0.1", Port: 80}
	a := New(42).SkewedTrace(500, opts)
	b := New(42).SkewedTrace(500, opts)
	for i := range a {
		if !netpkt.Equal(a[i], b[i]) {
			t.Fatalf("packet %d differs between identical seeds", i)
		}
	}

	counts := map[netpkt.Flow]int{}
	for _, p := range a {
		counts[p.Flow()]++
		if p.SrcPort < 1024 || p.SrcPort >= 10000 {
			t.Fatalf("client port %d outside [1024,10000)", p.SrcPort)
		}
		if p.DstIP != "10.0.0.1" || p.DstPort != 80 {
			t.Fatalf("packet misses the VIP: %+v", p)
		}
	}
	if len(counts) <= opts.Flows {
		t.Errorf("churn produced only %d distinct flows for %d slots", len(counts), opts.Flows)
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < len(a)/10 {
		t.Errorf("hottest flow carried %d/%d packets; want Zipf-style concentration", max, len(a))
	}

	// Without churn the active set is closed.
	noChurn := New(7).SkewedTrace(400, ZipfOpts{Flows: 16})
	distinct := map[netpkt.Flow]bool{}
	for _, p := range noChurn {
		distinct[p.Flow()] = true
	}
	if len(distinct) > 16 {
		t.Errorf("%d distinct flows without churn, want <= 16", len(distinct))
	}
}
