// Package nfactor synthesizes forwarding models of network functions by
// program analysis, reproducing "Automatic Synthesis of NF Models by
// Program Analysis" (Wu, Zhang, Banerjee — HotNets-XV, 2016).
//
// Given the source of an NF written in NFLang (a small imperative NF
// language standing in for the C sources the paper analyzes with LLVM
// giri and KLEE), the pipeline
//
//  1. backward-slices from every packet-output statement (packet slice),
//  2. classifies variables into pktVar/cfgVar/oisVar/logVar (StateAlyzer),
//  3. backward-slices from every output-impacting state update,
//  4. symbolically executes the union slice to enumerate execution paths,
//  5. refines each path into a stateful match/action table entry.
//
// The resulting Model is executable (run it on packets), renderable
// (Figure 6-style tables), compilable back to NFLang, and usable by the
// §4 applications: stateful verification (internal/verify re-exported as
// Chain/Blocked helpers on models), service-chain composition and
// model-guided test generation.
//
// Quick start:
//
//	res, err := nfactor.AnalyzeSource("mynat", src, nfactor.Options{})
//	fmt.Println(res.RenderModel())
package nfactor

import (
	"fmt"
	"io"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/lang"
	"nfactor/internal/lint"
	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/nfs"
	"nfactor/internal/normalize"
	"nfactor/internal/perf"
	"nfactor/internal/solver"
	"nfactor/internal/statealyzer"
	"nfactor/internal/telemetry"
	"nfactor/internal/trace"
	"nfactor/internal/value"
	"nfactor/internal/verify"
)

// Options configure an analysis.
type Options struct {
	// Entry is the per-packet function name; default "process". NFs in
	// other code structures (callback, socket loops — the paper's
	// Figure 4) are normalized automatically before analysis.
	Entry string
	// MaxPaths bounds symbolic execution (default 4096); hitting it is
	// reported in Metrics (the paper's ">1000 paths" condition).
	MaxPaths int
	// LoopBound bounds symbolic loop unrolling (default 16).
	LoopBound int
	// Config pins configuration globals to concrete values. Unpinned
	// scalar configuration stays symbolic and yields one table per
	// configuration condition.
	Config map[string]Value
	// MeasureOriginal additionally symbolically executes the original
	// program for comparison (Table 2's "orig" columns).
	MeasureOriginal bool
	// Workers is the symbolic-execution worker count (0 = GOMAXPROCS).
	// The synthesized model is identical at every worker count;
	// Workers=1 reproduces the historical sequential exploration order
	// exactly (useful for timing measurements).
	Workers int
	// Lint runs NFLint alongside synthesis (source passes, Table 1
	// classification cross-check, model passes); see
	// Result.Diagnostics.
	Lint bool
	// LintStrict additionally fails the analysis when NFLint finds an
	// error-severity diagnostic.
	LintStrict bool
	// Trace records the synthesis as a span tree — one span per Algorithm
	// 1 phase, per explored symbolic-execution state and per refined model
	// entry — exportable as Chrome trace-event JSON (Perfetto-loadable,
	// Result.WriteChromeTrace) or a text tree (Result.TraceTree). Off (the
	// default) costs nothing: the pipeline's hot paths carry only nil
	// checks.
	Trace bool
	// Progress, when set, receives a live one-line status every 200ms
	// during analysis (symexec frontier depth, paths/sec, solver-cache hit
	// rate) plus a final summary line.
	Progress io.Writer
}

// Value is a concrete NFLang value (integers, strings, booleans, tuples,
// lists, maps).
type Value = value.Value

// Convenience constructors for configuration values.
var (
	Int  = value.Int
	Str  = value.Str
	Bool = value.Bool
)

// Packet is a concrete packet header.
type Packet = netpkt.Packet

// Model is a synthesized NF forwarding model.
type Model = model.Model

// Metrics are the per-analysis measurements (Table 2).
type Metrics = core.Metrics

// Result is a completed analysis.
type Result struct {
	an   *core.Analysis
	opts core.Options
}

func (o Options) toCore() core.Options {
	return core.Options{
		Entry:           o.Entry,
		MaxPaths:        o.MaxPaths,
		LoopBound:       o.LoopBound,
		Workers:         o.Workers,
		ConfigOverride:  o.Config,
		MeasureOriginal: o.MeasureOriginal,
		Lint:            o.Lint,
		LintStrict:      o.LintStrict,
	}
}

// AnalyzeSource parses, normalizes and analyzes an NFLang program.
func AnalyzeSource(name, src string, opts Options) (*Result, error) {
	nf, err := nfs.FromSource(name, src)
	if err != nil {
		return nil, err
	}
	return analyze(nf, opts)
}

// AnalyzeCorpus analyzes one of the built-in corpus NFs; see CorpusNames.
func AnalyzeCorpus(name string, opts Options) (*Result, error) {
	nf, err := nfs.Load(name)
	if err != nil {
		return nil, err
	}
	return analyze(nf, opts)
}

// CorpusNames lists the built-in NF corpus (lb, balance, snortlite, nat,
// firewall).
func CorpusNames() []string { return nfs.Names() }

// CorpusSource returns the NFLang source of a corpus NF.
func CorpusSource(name string) (string, error) {
	nf, err := nfs.Load(name)
	if err != nil {
		return "", err
	}
	return nf.Source, nil
}

func analyze(nf *nfs.NF, opts Options) (*Result, error) {
	copts := opts.toCore()
	if opts.Trace {
		copts.Trace = trace.New()
	}
	if opts.Progress != nil {
		copts.Perf = perf.New()
		stop := trace.StartProgress(opts.Progress, copts.Perf, 0)
		defer stop()
	}
	an, err := core.Analyze(nf.Name, nf.Prog, copts)
	if err != nil {
		return nil, err
	}
	return &Result{an: an, opts: copts}, nil
}

// Diagnostic is one structured NFLint finding.
type Diagnostic = lint.Diagnostic

// Diagnostics returns the NFLint findings (Options.Lint).
func (r *Result) Diagnostics() []Diagnostic { return r.an.Diagnostics }

// RenderDiagnostics formats NFLint findings as human-readable text.
func RenderDiagnostics(diags []Diagnostic) string { return lint.Render(diags) }

// HasLintErrors reports whether any finding is error-severity.
func HasLintErrors(diags []Diagnostic) bool { return lint.HasErrors(diags) }

// Model returns the synthesized forwarding model.
func (r *Result) Model() *Model { return r.an.Model }

// Metrics returns the analysis measurements.
func (r *Result) Metrics() Metrics { return r.an.Metrics }

// CacheStats are solver-cache hit/miss counts.
type CacheStats = solver.CacheStats

// SolverCacheStats returns the hit/miss counts of the solver cache the
// analysis ran with (the accuracy checks on this Result add to them).
func (r *Result) SolverCacheStats() CacheStats { return r.an.Cache.Stats() }

// PerfReport renders the analysis' performance counters and phase timers
// (states explored, forks, solver calls, cache hit rates, per-phase
// wall/CPU time).
func (r *Result) PerfReport() string { return r.an.Perf.Report() }

// WritePerfJSON writes the analysis' perf counters and phase timers as a
// machine-readable JSON document (`nfactor -stats -json`).
func (r *Result) WritePerfJSON(w io.Writer) error { return r.an.Perf.WriteJSON(w) }

// WritePerfPrometheus writes the analysis' perf counters and phase
// timers in the Prometheus text exposition format, under the
// nfactor_pipeline_* namespace (disjoint from the data-plane telemetry
// series, so both can share one scrape endpoint).
func (r *Result) WritePerfPrometheus(w io.Writer, nf string) error {
	return telemetry.WritePerfPrometheus(w, nf, r.an.Perf)
}

// WriteChromeTrace exports the recorded synthesis trace as Chrome
// trace-event JSON, loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. It errors unless the analysis ran with Options.Trace.
func (r *Result) WriteChromeTrace(w io.Writer) error { return r.an.Tracer.WriteChrome(w) }

// TraceTree renders the recorded span tree as indented text. withTimes
// adds wall-clock durations; without them the rendering is canonical
// (children sorted, no timestamps) and identical at every worker count.
// Empty unless the analysis ran with Options.Trace.
func (r *Result) TraceTree(withTimes bool) string { return r.an.Tracer.Tree(withTimes) }

// EntryProvenance links a model entry back to the analysis that produced
// it: execution path id, path conditions with their branch statements,
// and the source position of every sliced statement on the path.
type EntryProvenance = core.EntryProvenance

// EntryProvenance returns the provenance record of model entry i.
func (r *Result) EntryProvenance(i int) (*EntryProvenance, error) { return r.an.EntryProvenance(i) }

// WhyEntry renders entry i's provenance as a human-readable report
// (`nfactor -why`).
func (r *Result) WhyEntry(i int) (string, error) { return r.an.WhyEntry(i) }

// RenderModel returns the Figure 6-style table rendering.
func (r *Result) RenderModel() string { return model.Render(r.an.Model) }

// RenderSlice returns the packet+state slice as NFLang source.
func (r *Result) RenderSlice() string {
	return lang.Print(r.an.SliceProg)
}

// VariableTable renders the Table 1-style variable categorization.
func (r *Result) VariableTable() string {
	v := r.an.Vars
	out := "category | variables\n"
	out += fmt.Sprintf("pktVar   | %v\n", v.PktVars())
	out += fmt.Sprintf("cfgVar   | %v\n", v.CfgVars())
	out += fmt.Sprintf("oisVar   | %v\n", v.OISVars())
	out += fmt.Sprintf("logVar   | %v\n", v.LogVars())
	return out
}

// Categories exposes the StateAlyzer result.
func (r *Result) Categories() *statealyzer.Result { return r.an.Vars }

// Instance creates a runnable model instance with the NF's configured
// values and initial state.
func (r *Result) Instance() (*model.Instance, error) {
	config, state, err := r.an.ConfigAndState(r.opts.ConfigOverride)
	if err != nil {
		return nil, err
	}
	return model.NewInstance(r.an.Model, config, state)
}

// Engine is the compiled data-plane engine: the synthesized model
// lowered to a decision tree over discriminating packet fields with
// unboxed closures for guards and actions. It is behaviorally identical
// to Instance (cross-validated by differential fuzzing) and 10-40x
// faster, with zero allocations per packet in steady state.
type Engine = dataplane.Engine

// Sharded is the concurrent engine: one specialized Engine per shard,
// packets routed by a flow-affinity hash or owner decode derived from
// the model's per-variable state classification (dataplane.Classify).
type Sharded = dataplane.Sharded

// CompiledEngine lowers the synthesized model plus its concrete
// configuration into an Engine. An error means some term shape has no
// data-plane lowering; fall back to Instance.
func (r *Result) CompiledEngine() (*Engine, error) {
	return r.an.CompiledEngine(r.opts)
}

// ShardedEngine builds a concurrent engine with n shards. Every state
// variable must admit a sharding lowering (flow-partitioned map,
// replicated read-only state, owner-routed map, per-shard
// sub-allocator, rotor); the error otherwise names the blocking
// variable (see dataplane.BlockingVar and nflint's NFL201).
func (r *Result) ShardedEngine(n int) (*Sharded, error) {
	return r.an.ShardedEngine(n, r.opts)
}

// DiffTestSharded replays a closed-loop stimulus (each forwarded packet
// followed by the reply its own output implies) through the sequential
// compiled engine and an n-shard ShardedEngine in lockstep, comparing
// every output and the end state — exact for partitioned state, modulo
// a checked bijection for allocator values (see dataplane.Equiv). This
// is the equivalence gate the corpus tests and `make bench-sharding`
// run; 0 mismatches means the sharded engine is safe to serve from.
func (r *Result) DiffTestSharded(stimulus []Packet, n int) (mismatches int, firstDiff string, err error) {
	res, err := r.an.DiffTestSharded(stimulus, n, r.opts)
	if err != nil {
		return 0, "", err
	}
	return res.Mismatches, res.FirstDiff, nil
}

// CompileModel lowers the model back to an NFLang program.
func (r *Result) CompileModel() (string, error) {
	config, state, err := r.an.ConfigAndState(r.opts.ConfigOverride)
	if err != nil {
		return "", err
	}
	prog, err := model.Compile(r.an.Model, config, state)
	if err != nil {
		return "", err
	}
	return lang.Print(prog), nil
}

// CheckEquivalence runs the paper's symbolic path-set comparison between
// the program and the compiled model (§5 accuracy, part 1). It returns an
// error describing the first divergence, or nil when equivalent.
func (r *Result) CheckEquivalence() error {
	rep, err := r.an.CheckPathEquivalence(r.opts)
	if err != nil {
		return err
	}
	if !rep.Equivalent() {
		return fmt.Errorf("nfactor: model and program path sets differ: %d uncovered program paths, %d mismatched model paths",
			len(rep.UncoveredProgram), len(rep.MismatchedModel))
	}
	return nil
}

// DetectStructure reports the Figure 4 code structure of an NFLang
// program without analyzing it.
func DetectStructure(src string) (string, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return "", err
	}
	kind, err := normalize.Detect(prog)
	if err != nil {
		return "", err
	}
	return kind.String(), nil
}

// NormalizeSource rewrites an NF in any Figure 4 code structure into the
// canonical single-processing-loop form (socket programs are TCP-unfolded
// per Figure 5) and returns the normalized NFLang source.
func NormalizeSource(src string) (string, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return "", err
	}
	out, _, err := normalize.Normalize(prog)
	if err != nil {
		return "", err
	}
	return lang.Print(out), nil
}

// FSM extracts the finite state machine of one map-valued state variable
// (e.g. balance's "tcp_state") from the model — the paper's §2.4
// observation that the state transition logic forms the FSM testing
// tools like BUZZ consume. It returns the transition table and a
// Graphviz dot rendering.
func (r *Result) FSM(stateVar string) (table, dot string, err error) {
	fsm, err := model.ExtractFSM(r.an.Model, stateVar)
	if err != nil {
		return "", "", err
	}
	return model.RenderFSM(fsm), fsm.Dot(), nil
}

// EntryReachable decides by multi-step symbolic reachability whether the
// given model entry can ever fire within maxSteps packets, starting from
// the NF's initial state. It returns the witness entry sequence when
// reachable.
func (r *Result) EntryReachable(entry, maxSteps int) (reachable bool, witness []int, err error) {
	_, state, err := r.an.ConfigAndState(r.opts.ConfigOverride)
	if err != nil {
		return false, nil, err
	}
	res, err := verify.EntryReachable(r.an.Model, entry, state, maxSteps)
	if err != nil {
		return false, nil, err
	}
	return res.Reachable, res.Entries, nil
}

// DynamicSlice returns the dynamic program slice for a concrete packet
// trace (the paper's Figure 1 highlight is a dynamic slice): earlier
// packets warm up the NF's state, and the returned NFLang source contains
// exactly the statically-sliced statements that executed for the last
// packet.
func (r *Result) DynamicSlice(trace []Packet) (string, error) {
	vals := make([]value.Value, len(trace))
	for i, p := range trace {
		vals[i] = p.ToValue()
	}
	prog, err := r.an.DynamicSlice(vals)
	if err != nil {
		return "", err
	}
	return lang.Print(prog), nil
}

// MinimizeModel returns a behaviour-preserving compression of the model:
// path enumeration yields one table entry per execution path, and entries
// whose actions are identical and whose guards differ only in a
// complementary condition fold together (Quine-McCluskey adjacency),
// yielding the compact tables an operator would write by hand.
func (r *Result) MinimizeModel() *Model {
	return model.Minimize(r.an.Model)
}

// Verdict is one packet's observable outcome during replay or serving:
// dropped, or forwarded as one or more (possibly rewritten) packets on
// their interfaces.
type Verdict = netpkt.Verdict

// ParseTrace reads the nfreplay trace text format.
func ParseTrace(r io.Reader) ([]Packet, error) { return netpkt.ParseTrace(r) }

// FormatTrace writes packets in the trace text format.
func FormatTrace(w io.Writer, pkts []Packet) error { return netpkt.FormatTrace(w, pkts) }
