package nfactor

import (
	"strings"
	"testing"
)

func TestAnalyzeCorpusQuickstart(t *testing.T) {
	res, err := AnalyzeCorpus("lb", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Model().Entries) != 5 {
		t.Errorf("lb entries = %d", len(res.Model().Entries))
	}
	out := res.RenderModel()
	if !strings.Contains(out, `mode == "RR"`) {
		t.Errorf("render missing RR table:\n%s", out)
	}
	tbl := res.VariableTable()
	for _, want := range []string{"pktVar", "f2b_nat", "pass_stat", "mode"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("variable table missing %q:\n%s", want, tbl)
		}
	}
}

func TestAnalyzeSourceCustomNF(t *testing.T) {
	src := `
limit = 3;
count = {};
func process(pkt) {
    if pkt.sip in count {
        c = count[pkt.sip];
    } else {
        c = 0;
    }
    count[pkt.sip] = c + 1;
    if c + 1 > limit {
        return;
    }
    send(pkt);
}`
	res, err := AnalyzeSource("ratelimit", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckEquivalence(); err != nil {
		t.Error(err)
	}
	rep, err := res.DiffTest(DiffOptions{N: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Matches() {
		t.Errorf("difftest mismatches: %s", rep.FirstDiff)
	}
	if m := res.Metrics(); m.EPSlice == 0 || m.LoCSlice == 0 {
		t.Errorf("metrics empty: %+v", m)
	}
}

func TestConfigPinning(t *testing.T) {
	res, err := AnalyzeCorpus("lb", Options{Config: map[string]Value{"mode": Str("HASH")}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.RenderModel(), `mode ==`) {
		t.Error("pinned mode still appears as a config condition")
	}
	if len(res.Model().Entries) != 4 {
		t.Errorf("entries = %d, want 4 with pinned mode", len(res.Model().Entries))
	}
}

func TestInstanceRoundTrip(t *testing.T) {
	res, err := AnalyzeCorpus("firewall", Options{})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := res.Instance()
	if err != nil {
		t.Fatal(err)
	}
	p := Packet{
		SrcIP: "10.0.0.9", DstIP: "8.8.8.8",
		SrcPort: 5000, DstPort: 443,
		Proto: "tcp", Flags: "S", TTL: 64, InIface: "lan",
	}
	out, err := inst.Process(p.ToValue())
	if err != nil {
		t.Fatal(err)
	}
	if out.Dropped {
		t.Error("egress https dropped")
	}
}

func TestCompileModelReanalyzable(t *testing.T) {
	res, err := AnalyzeCorpus("nat", Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := res.CompileModel()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := AnalyzeSource("nat-model", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Model().Entries) == 0 {
		t.Error("compiled model re-analysis produced no entries")
	}
}

func TestDetectAndNormalize(t *testing.T) {
	src, err := CorpusSource("balance")
	if err != nil {
		t.Fatal(err)
	}
	kind, err := DetectStructure(src)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "nested loop" {
		t.Errorf("kind = %q", kind)
	}
	norm, err := NormalizeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(norm, "func process(pkt)") {
		t.Errorf("normalized source missing process():\n%s", norm)
	}
}

func TestCorpusNames(t *testing.T) {
	names := CorpusNames()
	if len(names) != 8 {
		t.Errorf("corpus = %v", names)
	}
}

func TestRenderSlice(t *testing.T) {
	res, err := AnalyzeCorpus("snortlite", Options{})
	if err != nil {
		t.Fatal(err)
	}
	sl := res.RenderSlice()
	if strings.Contains(sl, "proto_tcp") {
		t.Errorf("slice still contains statistics code:\n%s", sl)
	}
	if !strings.Contains(sl, "syn_count") {
		t.Errorf("slice lost forwarding state:\n%s", sl)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := AnalyzeSource("bad", "not a program", Options{}); err == nil {
		t.Error("parse error not reported")
	}
	if _, err := AnalyzeCorpus("nope", Options{}); err == nil {
		t.Error("unknown corpus NF not reported")
	}
	if _, err := AnalyzeSource("nosend", "x = 1;\nfunc process(pkt) { x = 2; }", Options{}); err == nil {
		t.Error("NF without send not reported")
	}
}

func TestFSMExtraction(t *testing.T) {
	res, err := AnalyzeCorpus("balance", Options{})
	if err != nil {
		t.Fatal(err)
	}
	table, dot, err := res.FSM("tcp_state")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SYN_RCVD", "ESTABLISHED"} {
		if !strings.Contains(table, want) || !strings.Contains(dot, want) {
			t.Errorf("FSM missing %q\ntable:\n%s\ndot:\n%s", want, table, dot)
		}
	}
	if _, _, err := res.FSM("nosuchvar"); err == nil {
		t.Error("FSM of unknown variable did not error")
	}
}

func TestEntryReachableAPI(t *testing.T) {
	res, err := AnalyzeCorpus("firewall", Options{})
	if err != nil {
		t.Fatal(err)
	}
	anyReachable := false
	for i := range res.Model().Entries {
		ok, witness, err := res.EntryReachable(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			anyReachable = true
			if len(witness) == 0 || witness[len(witness)-1] != i {
				t.Errorf("bad witness %v for entry %d", witness, i)
			}
		}
	}
	if !anyReachable {
		t.Error("no entry reachable at all")
	}
	if _, _, err := res.EntryReachable(999, 1); err == nil {
		t.Error("out-of-range entry did not error")
	}
}

func TestDynamicSliceAPI(t *testing.T) {
	res, err := AnalyzeCorpus("lb", Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := Packet{SrcIP: "9.9.9.9", DstIP: "3.3.3.3", SrcPort: 1234, DstPort: 80,
		Proto: "tcp", Flags: "S", TTL: 64, InIface: "eth0"}
	src, err := res.DynamicSlice([]Packet{first})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "rr_idx") {
		t.Errorf("dynamic slice missing RR arm:\n%s", src)
	}
	if _, err := res.DynamicSlice(nil); err == nil {
		t.Error("empty trace did not error")
	}
}

func TestMinimizeModelAPI(t *testing.T) {
	res, err := AnalyzeSource("eq", `
func process(pkt) {
    if pkt.ttl > 9 { pkt.m = 1; } else { pkt.m = 1; }
    send(pkt);
}`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.MinimizeModel().Entries); got != 1 {
		t.Errorf("minimized entries = %d, want 1", got)
	}
}

func TestReplayAPIs(t *testing.T) {
	res, err := AnalyzeCorpus("lb", Options{})
	if err != nil {
		t.Fatal(err)
	}
	trace := []Packet{
		{SrcIP: "9.9.9.9", DstIP: "3.3.3.3", SrcPort: 5555, DstPort: 80, Proto: "tcp", Flags: "S", TTL: 64, InIface: "eth0"},
		{SrcIP: "1.2.3.4", DstIP: "9.9.9.9", SrcPort: 81, DstPort: 6666, Proto: "tcp", Flags: "A", TTL: 64, InIface: "eth0"},
	}
	replay := func(b Backend) []Verdict {
		t.Helper()
		rp, err := res.Replayer(b)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Verdict, 0, len(trace))
		for i := range trace {
			v, err := rp.Process(&trace[i])
			if err != nil {
				t.Fatalf("packet %d: %v", i, err)
			}
			out = append(out, v)
		}
		return out
	}
	pv := replay(BackendProgram)
	mv := replay(BackendModel)
	if len(pv) != 2 || len(mv) != 2 {
		t.Fatalf("verdict counts %d/%d", len(pv), len(mv))
	}
	if pv[0].Dropped || mv[0].Dropped {
		t.Error("new flow dropped")
	}
	if !pv[1].Dropped || !mv[1].Dropped {
		t.Error("stray reverse packet forwarded")
	}
	if !strings.Contains(mv[0].String(), "FORWARD") || pv[1].String() != "DROP" {
		t.Errorf("verdict strings: %q / %q", mv[0], pv[1])
	}
	// Trace codec exposed through the facade.
	var sb strings.Builder
	if err := FormatTrace(&sb, trace); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(strings.NewReader(sb.String()))
	if err != nil || len(back) != 2 {
		t.Fatalf("facade trace round trip: %v, %d", err, len(back))
	}
}
