package nfactor

import (
	"fmt"
	"runtime"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/interp"
	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/serve"
	"nfactor/internal/telemetry"
	"nfactor/internal/value"
	"nfactor/internal/verify"
	"nfactor/internal/workload"
)

// Snapshot is a point-in-time export of a replayer's telemetry: packet
// and per-verdict counters, per-entry hit counts, sampled latency
// histogram, and state-size gauges. See internal/telemetry for the
// field semantics and the Prometheus text export
// (Snapshot.WritePrometheus).
type Snapshot = telemetry.Snapshot

// PacketTrace is the provenance record of one packet in explain mode:
// the guards evaluated with their outcomes, the entry that fired, the
// packets sent and the state transitions applied. Its String method
// renders the human-readable "why" trace.
type PacketTrace = telemetry.PacketTrace

// Backend selects the execution engine behind a Replayer.
type Backend int

const (
	// BackendProgram replays through the original NF program (the
	// reference semantics; no table, so no per-entry counters).
	BackendProgram Backend = iota
	// BackendModel replays through the synthesized model's reference
	// interpreter (model.Instance).
	BackendModel
	// BackendCompiled replays through the compiled zero-allocation
	// data-plane engine.
	BackendCompiled
	// BackendSharded replays through the sharded engine with GOMAXPROCS
	// shards (use Result.ShardedReplayer for an explicit shard count).
	// Requires every state variable to have a sharding lowering (see
	// dataplane.Classify); the error names the blocking variable
	// otherwise.
	BackendSharded
)

// String names the backend like the telemetry Snapshot.Backend field.
func (b Backend) String() string {
	switch b {
	case BackendProgram:
		return "program"
	case BackendModel:
		return "model"
	case BackendCompiled:
		return "compiled"
	case BackendSharded:
		return "sharded"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// Replayer is the unified replay surface: every execution engine —
// original program, model instance, compiled engine, sharded engine,
// fused chain — processes packets one at a time with evolving state and
// exports the same telemetry Snapshot. Replayers are single-goroutine
// objects. The canonical definition lives in internal/serve: the same
// interface the serving daemon hot-swaps behind.
type Replayer = serve.Replayer

// Explainer is the optional provenance extension of Replayer: table
// backends (model, compiled, sharded, chain) can explain each verdict
// with the full guard trail. The program backend does not implement it
// (the original source has no match/action table to trace).
type Explainer = serve.Explainer

// Replayer builds the unified replay surface over the chosen backend.
// It replaces the ReplayProgram/ReplayModel/ReplayCompiled trio: one
// constructor, one Process loop, uniform telemetry.
func (r *Result) Replayer(b Backend) (Replayer, error) {
	switch b {
	case BackendProgram:
		in, err := interp.New(r.an.Original, r.an.Entry, interp.Options{ConfigOverride: r.opts.ConfigOverride})
		if err != nil {
			return nil, err
		}
		return &programReplayer{in: in, ois: r.an.Model.OISVars, tel: telemetry.NewSink(0)}, nil
	case BackendModel:
		inst, err := r.Instance()
		if err != nil {
			return nil, err
		}
		return &modelReplayer{inst: inst}, nil
	case BackendCompiled:
		eng, err := r.CompiledEngine()
		if err != nil {
			return nil, err
		}
		return &engineReplayer{eng: eng}, nil
	case BackendSharded:
		return r.ShardedReplayer(runtime.GOMAXPROCS(0))
	}
	return nil, fmt.Errorf("nfactor: unknown backend %v", b)
}

// ShardedReplayer is Replayer(BackendSharded) with an explicit shard
// count. Note a Replayer processes packets one at a time; for actual
// cross-shard parallelism use ShardedEngine's ProcessBatch directly.
func (r *Result) ShardedReplayer(shards int) (Replayer, error) {
	sh, err := r.ShardedEngine(shards)
	if err != nil {
		return nil, err
	}
	return &shardedReplayer{sh: sh}, nil
}

// --- backends ---------------------------------------------------------

type programReplayer struct {
	in  *interp.Interp
	ois []string
	tel *telemetry.Sink
}

func (p *programReplayer) Process(pkt *Packet) (Verdict, error) {
	t0 := p.tel.Start()
	o, err := p.in.Process(pkt.ToValue())
	if err != nil {
		p.tel.Count(t0, -1, false, true)
		return Verdict{}, err
	}
	v, err := toVerdict(o)
	p.tel.Count(t0, -1, err == nil && v.Dropped, err != nil)
	return v, err
}

func (p *programReplayer) Snapshot() Snapshot {
	sizes := map[string]int{}
	globals := p.in.Globals()
	for _, name := range p.ois {
		g, ok := globals[name]
		if !ok {
			continue
		}
		if g.Kind == value.KindMap {
			sizes[name] = g.Map.Len()
		} else {
			sizes[name] = 1
		}
	}
	return p.tel.Snapshot("program", sizes)
}

type modelReplayer struct {
	inst *model.Instance
}

func (m *modelReplayer) Process(pkt *Packet) (Verdict, error) {
	o, err := m.inst.Process(pkt.ToValue())
	if err != nil {
		return Verdict{}, err
	}
	return toVerdict(o)
}

func (m *modelReplayer) ProcessExplain(pkt *Packet) (Verdict, *PacketTrace, error) {
	o, tr, err := m.inst.ProcessExplain(pkt.ToValue())
	if err != nil {
		return Verdict{}, tr, err
	}
	v, err := toVerdict(o)
	return v, tr, err
}

func (m *modelReplayer) Snapshot() Snapshot { return m.inst.Telemetry() }

type engineReplayer struct {
	eng *dataplane.Engine
}

// engineVerdict copies an engine-owned Output into a caller-owned
// Verdict (the engine reuses its Output across calls).
func engineVerdict(o *dataplane.Output) Verdict {
	v := Verdict{Dropped: o.Dropped}
	for _, s := range o.Sent {
		v.Sent = append(v.Sent, s.Pkt)
		v.Ifaces = append(v.Ifaces, s.Iface)
	}
	return v
}

func (e *engineReplayer) Process(pkt *Packet) (Verdict, error) {
	o, err := e.eng.Process(pkt)
	if err != nil {
		return Verdict{}, err
	}
	return engineVerdict(o), nil
}

func (e *engineReplayer) ProcessExplain(pkt *Packet) (Verdict, *PacketTrace, error) {
	o, tr, err := e.eng.ProcessExplain(pkt)
	if err != nil {
		return Verdict{}, tr, err
	}
	return engineVerdict(o), tr, nil
}

func (e *engineReplayer) Snapshot() Snapshot { return e.eng.Telemetry() }

type shardedReplayer struct {
	sh *dataplane.Sharded
}

func (s *shardedReplayer) Process(pkt *Packet) (Verdict, error) {
	o, err := s.sh.Process(pkt)
	if err != nil {
		return Verdict{}, err
	}
	return engineVerdict(o), nil
}

func (s *shardedReplayer) ProcessExplain(pkt *Packet) (Verdict, *PacketTrace, error) {
	o, tr, err := s.sh.ProcessExplain(pkt)
	if err != nil {
		return Verdict{}, tr, err
	}
	return engineVerdict(o), tr, nil
}

func (s *shardedReplayer) Snapshot() Snapshot { return s.sh.Telemetry() }

// --- unified diff test ------------------------------------------------

// RandomTrace generates n random packets from seed with the same
// workload generator DiffTest uses — handy for exercising a Replayer
// when no operator trace is at hand.
func RandomTrace(n int, seed int64) []Packet {
	return workload.New(seed).RandomTrace(n)
}

// DiffOptions configure Result.DiffTest.
type DiffOptions struct {
	// Trace is the packet sequence to replay; nil generates N random
	// packets from Seed.
	Trace []Packet
	// N is the random-trace length when Trace is nil (default 1000 —
	// the paper's "repeat 1000 times").
	N int
	// Seed seeds the random trace generator.
	Seed int64
	// Backend selects the candidate side. BackendModel (the default)
	// reproduces §5: original program vs model instance. BackendCompiled
	// checks the compiled data plane against the model instance in
	// lockstep (outputs, fired entries, and end state). BackendProgram
	// and BackendSharded are not valid candidates.
	Backend Backend
}

// DiffReport is the structured outcome of a differential test: trial
// and mismatch counts plus a guard-level first-divergence report
// (which packet diverged, how, and — for table-vs-table diffs — which
// guard disagreed). Render formats it for humans.
type DiffReport = core.DiffResult

// Divergence details a DiffReport's first divergence.
type Divergence = core.Divergence

// DiffTest is the one differential-testing entry point (§5 accuracy,
// part 2): replay a trace — explicit or random — through the reference
// and a candidate backend side by side and compare every packet's
// outputs. It replaces DiffTestRandom/DiffTestTrace/DiffTestCompiled.
func (r *Result) DiffTest(opts DiffOptions) (*DiffReport, error) {
	trace := opts.Trace
	if trace == nil {
		n := opts.N
		if n <= 0 {
			n = 1000
		}
		trace = workload.New(opts.Seed).RandomTrace(n)
	}
	switch opts.Backend {
	case BackendProgram, BackendModel:
		// The program is always the reference side, so the zero value
		// (BackendProgram) means "the default candidate": the model.
		return r.an.DiffTest(trace, r.opts)
	case BackendCompiled:
		return r.an.DiffTestCompiled(trace, r.opts)
	default:
		return nil, fmt.Errorf("nfactor: DiffTest candidate must be BackendModel or BackendCompiled, got %v", opts.Backend)
	}
}

// --- telemetry-driven model views -------------------------------------

// RenderModelWithCounters renders the Figure 6 tables annotated with a
// snapshot's live per-entry hit counters (OpenFlow-style table
// counters) and the default-drop count.
func (r *Result) RenderModelWithCounters(snap Snapshot) string {
	return model.RenderWithHits(r.an.Model, snap)
}

// DeadEntry reports one table entry that a workload never hit, together
// with its symbolic reachability verdict: an unreachable zero-hit entry
// is dead table mass (synthesis artifact), while a reachable one is a
// workload coverage gap (the witness shows the entry sequence that
// would reach it).
type DeadEntry struct {
	Entry     int
	Reachable bool
	Witness   []int // entry sequence reaching it (when Reachable)
}

// DeadEntries cross-checks a snapshot's zero-hit entries against
// multi-step symbolic reachability (EntryReachable, bounded by
// maxSteps packets).
func (r *Result) DeadEntries(snap Snapshot, maxSteps int) ([]DeadEntry, error) {
	_, state, err := r.an.ConfigAndState(r.opts.ConfigOverride)
	if err != nil {
		return nil, err
	}
	var out []DeadEntry
	for i := range r.an.Model.Entries {
		if i < len(snap.EntryHits) && snap.EntryHits[i] > 0 {
			continue
		}
		res, err := verify.EntryReachable(r.an.Model, i, state, maxSteps)
		if err != nil {
			return nil, fmt.Errorf("nfactor: entry %d reachability: %w", i, err)
		}
		out = append(out, DeadEntry{Entry: i, Reachable: res.Reachable, Witness: res.Entries})
	}
	return out, nil
}

// toVerdict converts an interpreter output into a Verdict. A sent value
// that does not convert to a wire packet is an error (it would
// previously be dropped silently).
func toVerdict(o *interp.Output) (Verdict, error) {
	v := Verdict{Dropped: o.Dropped}
	for i, s := range o.Sent {
		p, err := netpkt.FromValue(s.Pkt)
		if err != nil {
			return Verdict{}, fmt.Errorf("nfactor: sent value %d is not a packet: %w", i, err)
		}
		v.Sent = append(v.Sent, p)
		v.Ifaces = append(v.Ifaces, s.Iface)
	}
	return v, nil
}
