package nfactor

import (
	"strings"
	"testing"

	"nfactor/internal/interp"
)

// TestReplayerBackends drives the same trace through every backend of
// the unified Replayer API and cross-checks verdicts and telemetry.
func TestReplayerBackends(t *testing.T) {
	res, err := AnalyzeCorpus("firewall", Options{})
	if err != nil {
		t.Fatal(err)
	}
	trace := []Packet{
		{SrcIP: "10.0.0.1", DstIP: "3.3.3.3", SrcPort: 1234, DstPort: 80, Proto: "tcp", Flags: "S", TTL: 64, InIface: "lan"},
		{SrcIP: "3.3.3.3", DstIP: "10.0.0.1", SrcPort: 80, DstPort: 1234, Proto: "tcp", Flags: "SA", TTL: 60, InIface: "wan"},
		{SrcIP: "9.9.9.9", DstIP: "10.0.0.1", SrcPort: 5555, DstPort: 22, Proto: "tcp", Flags: "S", TTL: 60, InIface: "wan"},
	}
	wantDropped := []bool{false, false, true}

	for _, b := range []Backend{BackendProgram, BackendModel, BackendCompiled, BackendSharded} {
		rp, err := res.Replayer(b)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		for i := range trace {
			v, err := rp.Process(&trace[i])
			if err != nil {
				t.Fatalf("%v packet %d: %v", b, i, err)
			}
			if v.Dropped != wantDropped[i] {
				t.Errorf("%v packet %d: dropped=%v, want %v", b, i, v.Dropped, wantDropped[i])
			}
		}
		snap := rp.Snapshot()
		if snap.Packets != int64(len(trace)) {
			t.Errorf("%v: snapshot packets = %d, want %d", b, snap.Packets, len(trace))
		}
		if snap.Forwards != 2 || snap.Drops != 1 {
			t.Errorf("%v: forwards/drops = %d/%d, want 2/1", b, snap.Forwards, snap.Drops)
		}
		if snap.Backend != b.String() {
			t.Errorf("%v: snapshot backend = %q", b, snap.Backend)
		}
	}
}

// TestReplayerTelemetryAgree demands the table-backed backends report
// identical counters for the same traffic (the program backend has no
// table, so only the verdict counters are comparable there).
func TestReplayerTelemetryAgree(t *testing.T) {
	res, err := AnalyzeCorpus("firewall", Options{})
	if err != nil {
		t.Fatal(err)
	}
	trace := RandomTrace(300, 7)
	snaps := map[Backend]Snapshot{}
	for _, b := range []Backend{BackendModel, BackendCompiled, BackendSharded} {
		rp, err := res.Replayer(b)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		for i := range trace {
			if _, err := rp.Process(&trace[i]); err != nil {
				t.Fatalf("%v packet %d: %v", b, i, err)
			}
		}
		snaps[b] = rp.Snapshot()
	}
	if !snaps[BackendModel].CountersEqual(snaps[BackendCompiled]) {
		t.Errorf("model vs compiled counters diverge:\n%s\n%s",
			snaps[BackendModel].Report(), snaps[BackendCompiled].Report())
	}
	if !snaps[BackendCompiled].CountersEqual(snaps[BackendSharded]) {
		t.Errorf("compiled vs sharded counters diverge:\n%s\n%s",
			snaps[BackendCompiled].Report(), snaps[BackendSharded].Report())
	}
}

// TestReplayerExplain exercises the provenance path through the facade:
// model, compiled and sharded replayers explain; program does not.
func TestReplayerExplain(t *testing.T) {
	res, err := AnalyzeCorpus("firewall", Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := Packet{SrcIP: "10.0.0.1", DstIP: "3.3.3.3", SrcPort: 1234, DstPort: 80,
		Proto: "tcp", Flags: "S", TTL: 64, InIface: "lan"}

	for _, b := range []Backend{BackendModel, BackendCompiled, BackendSharded} {
		rp, err := res.Replayer(b)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		ex, ok := rp.(Explainer)
		if !ok {
			t.Fatalf("%v replayer does not explain", b)
		}
		v, tr, err := ex.ProcessExplain(&p)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if v.Dropped {
			t.Errorf("%v: egress flow dropped", b)
		}
		if tr == nil || tr.Entry < 0 {
			t.Fatalf("%v: no entry attributed (trace %+v)", b, tr)
		}
		why := tr.String()
		for _, want := range []string{"why", "entry", "fired", "verdict: FORWARD"} {
			if !strings.Contains(why, want) {
				t.Errorf("%v explain output missing %q:\n%s", b, want, why)
			}
		}
	}

	rp, err := res.Replayer(BackendProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rp.(Explainer); ok {
		t.Error("program replayer claims to explain against a model table")
	}
}

// TestDiffTestUnified covers the collapsed differential-test entry
// point: defaults, explicit backends, and invalid candidates.
func TestDiffTestUnified(t *testing.T) {
	res, err := AnalyzeCorpus("nat", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Zero value: random trace, model candidate.
	rep, err := res.DiffTest(DiffOptions{N: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 200 || !rep.Matches() {
		t.Fatalf("model difftest: trials=%d mismatches=%d first=%s", rep.Trials, rep.Mismatches, rep.FirstDiff)
	}
	if !strings.Contains(rep.Render(), "all matched") {
		t.Errorf("render of clean report: %q", rep.Render())
	}
	// Compiled candidate on an explicit trace.
	trace := RandomTrace(200, 4)
	rep, err = res.DiffTest(DiffOptions{Trace: trace, Backend: BackendCompiled})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != len(trace) || !rep.Matches() {
		t.Fatalf("compiled difftest: trials=%d mismatches=%d first=%s", rep.Trials, rep.Mismatches, rep.FirstDiff)
	}
	// Invalid candidates are rejected.
	if _, err := res.DiffTest(DiffOptions{N: 1, Backend: BackendSharded}); err == nil {
		t.Error("sharded candidate accepted")
	}
}

// TestFacadeBackendParity drives every backend through the one
// Replayer surface and checks they agree packet for packet — the
// property the deleted per-backend Replay* wrappers used to pin.
func TestFacadeBackendParity(t *testing.T) {
	res, err := AnalyzeCorpus("lb", Options{})
	if err != nil {
		t.Fatal(err)
	}
	trace := RandomTrace(50, 3)
	backends := []Backend{BackendProgram, BackendModel, BackendCompiled, BackendSharded}
	verdicts := make([][]Verdict, len(backends))
	for bi, b := range backends {
		rp, err := res.Replayer(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range trace {
			v, err := rp.Process(&trace[i])
			if err != nil {
				t.Fatalf("%v packet %d: %v", b, i, err)
			}
			verdicts[bi] = append(verdicts[bi], v)
		}
		if snap := rp.Snapshot(); snap.Packets != int64(len(trace)) {
			t.Errorf("%v snapshot packets = %d, want %d", b, snap.Packets, len(trace))
		}
	}
	for bi := 1; bi < len(backends); bi++ {
		for i := range trace {
			if verdicts[0][i].Dropped != verdicts[bi][i].Dropped {
				t.Errorf("packet %d: %v verdict diverges from %v", i, backends[bi], backends[0])
			}
		}
	}
	if mism, diff, err := diffVia(res, DiffOptions{N: 100, Seed: 5}); err != nil || mism != 0 {
		t.Errorf("random difftest: mism=%d diff=%q err=%v", mism, diff, err)
	}
	if mism, diff, err := diffVia(res, DiffOptions{Trace: trace, Backend: BackendCompiled}); err != nil || mism != 0 {
		t.Errorf("compiled difftest: mism=%d diff=%q err=%v", mism, diff, err)
	}
}

func diffVia(res *Result, opts DiffOptions) (int, string, error) {
	rep, err := res.DiffTest(opts)
	if err != nil {
		return 0, "", err
	}
	return rep.Mismatches, rep.FirstDiff, nil
}

// TestDeadEntries replays traffic that leaves some entries cold and
// cross-checks the zero-hit report against symbolic reachability.
func TestDeadEntries(t *testing.T) {
	res, err := AnalyzeCorpus("firewall", Options{})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := res.Replayer(BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	// Only egress traffic on allowed ports: the ingress entries and the
	// egress-deny entry stay cold.
	p := Packet{SrcIP: "10.0.0.1", DstIP: "3.3.3.3", SrcPort: 1234, DstPort: 80,
		Proto: "tcp", Flags: "S", TTL: 64, InIface: "lan"}
	if _, err := rp.Process(&p); err != nil {
		t.Fatal(err)
	}
	dead, err := res.DeadEntries(rp.Snapshot(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) == 0 {
		t.Fatal("no cold entries reported for a one-packet workload")
	}
	for _, d := range dead {
		if !d.Reachable {
			t.Errorf("entry %d reported unreachable — every firewall entry is reachable within 2 packets", d.Entry)
		}
	}
}

// TestRenderModelWithCounters checks the hit-annotated Figure 6 view.
func TestRenderModelWithCounters(t *testing.T) {
	res, err := AnalyzeCorpus("firewall", Options{})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := res.Replayer(BackendModel)
	if err != nil {
		t.Fatal(err)
	}
	trace := RandomTrace(100, 2)
	for i := range trace {
		if _, err := rp.Process(&trace[i]); err != nil {
			t.Fatal(err)
		}
	}
	out := res.RenderModelWithCounters(rp.Snapshot())
	for _, want := range []string{"traffic: 100 packets", "hits:", "default: drop"} {
		if !strings.Contains(out, want) {
			t.Errorf("annotated render missing %q:\n%s", want, out)
		}
	}
	// The plain render stays counter-free for the paper figures.
	if strings.Contains(res.RenderModel(), "hits:") {
		t.Error("plain RenderModel grew hit counters")
	}
}

// TestToVerdictNonPacketSend pins the toVerdict fix: a sent value that
// does not convert to a wire packet is an error, not a silently
// shortened verdict. (The interpreter and model instance both reject
// such sends earlier, so this guards the conversion layer itself.)
func TestToVerdictNonPacketSend(t *testing.T) {
	bad := &interp.Output{Sent: []interp.SentPacket{{Pkt: Int(1), Iface: "eth0"}}}
	if _, err := toVerdict(bad); err == nil {
		t.Fatal("non-packet send converted without error")
	} else if !strings.Contains(err.Error(), "not a packet") {
		t.Fatalf("unexpected error: %v", err)
	}

	p := Packet{SrcIP: "1.1.1.1", DstIP: "2.2.2.2", SrcPort: 1, DstPort: 2,
		Proto: "tcp", Flags: "S", TTL: 64, InIface: "eth0"}
	good := &interp.Output{Sent: []interp.SentPacket{{Pkt: p.ToValue(), Iface: "wan"}}}
	v, err := toVerdict(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Sent) != 1 || v.Ifaces[0] != "wan" || v.Dropped {
		t.Errorf("verdict = %+v", v)
	}
}
