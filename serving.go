package nfactor

import (
	"io"

	"nfactor/internal/obsrv"
	"nfactor/internal/serve"
	"nfactor/internal/telemetry"
)

// Server is the live serving daemon: a long-running loop pulling
// packets from a Source, pushing verdicts to a Sink, with
// generation-consistent engine hot-swap — see internal/serve for the
// protocol (batch-barrier quiescence, per-packet epoch stamps, state
// carry-over, differential swap gate).
type Server = serve.Server

// ServeConfig tunes a Server (source, sink, batch and window sizes).
type ServeConfig = serve.Config

// SwapRequest asks a running Server to replace its engine generation
// with a freshly synthesized candidate.
type SwapRequest = serve.SwapRequest

// SwapReport is a swap's outcome: applied with a carry-over audit, or
// blocked with the first divergence (down to the diverging guard).
type SwapReport = serve.SwapReport

// ServeStats are the serving loop's generation counters, published
// after every batch (Server.Stats).
type ServeStats = telemetry.ServeStats

// Source feeds packets to a Server; Sink receives each outcome.
type (
	Source  = serve.Source
	Sink    = serve.Sink
	Outcome = serve.Outcome
)

// NewServer builds the initial generation from a candidate (see
// Result.ServeCandidate / ChainResult.ServeCandidate) and a server
// around it. Call Run to serve.
func NewServer(c ServeCandidate, cfg ServeConfig) (*Server, error) {
	return serve.New(c, cfg)
}

// NewTraceSource serves a fixed trace, once or looping (limit bounds
// the total; 0 = once through, or forever when looping).
func NewTraceSource(trace []Packet, loop bool, limit int64) Source {
	return serve.NewTraceSource(trace, loop, limit)
}

// NewReaderSource parses trace lines from a stream (stdin, a pipe).
func NewReaderSource(r io.Reader) Source { return serve.NewReaderSource(r) }

// UDPSource serves packets parsed from UDP datagrams, one trace line
// per datagram. Close it to unblock a draining Server.
type UDPSource = serve.UDPSource

// NewUDPSource listens on addr and returns a Source fed by datagrams.
func NewUDPSource(addr string) (*UDPSource, error) { return serve.NewUDPSource(addr) }

// NewWriterSink renders verdict lines in nfreplay's replay format.
func NewWriterSink(w io.Writer) Sink { return serve.NewWriterSink(w) }

// NewPacedSource rate-limits src to pps packets per second, so a
// looping trace can stand in for live traffic.
func NewPacedSource(src Source, pps float64) Source { return serve.NewPacedSource(src, pps) }

// --- live observability ------------------------------------------------

// ObsOptions tunes the serving daemon's observability collectors
// (drift windows, gap-witness budget, swap-log depth). Set
// ServeConfig.Obs to a (possibly zero-valued) *ObsOptions to enable
// them.
type ObsOptions = obsrv.Options

// ObsSnapshot is the collectors' published state: per-stage gap hits
// against the NFL103 witnesses plus the windowed drift verdict.
type ObsSnapshot = obsrv.Snapshot

// ObsHTTP is the embedded observability HTTP server: /metrics,
// /state, /coverage, /swaps and /debug/pprof/ over a live Server.
type ObsHTTP = obsrv.HTTP

// ObsHTTPConfig tunes the observability HTTP server (metric labels,
// extra Prometheus appenders, inspection timeout).
type ObsHTTPConfig = obsrv.HTTPConfig

// NewObsHTTP binds addr and serves the observability endpoints for a
// live Server in a background goroutine. Close it to stop.
func NewObsHTTP(addr string, srv *Server, cfg ObsHTTPConfig) (*ObsHTTP, error) {
	return obsrv.NewHTTP(addr, srv, cfg)
}

// WriteServeMetrics renders the full observability scrape payload for
// a live Server — the same body /metrics serves — followed by the
// extra appenders (e.g. the synthesis pipeline's perf counters).
func WriteServeMetrics(w io.Writer, srv *Server, nf string, extra []func(io.Writer) error) error {
	return obsrv.WriteAllMetrics(w, srv, nf, extra)
}

// WriteObsFileAtomic renders into a temp file and atomically renames
// it over path — the periodic -prom rewrite primitive (a scraping
// sidecar never sees a torn file).
func WriteObsFileAtomic(path string, render func(io.Writer) error) error {
	return obsrv.WriteFileAtomic(path, render)
}
