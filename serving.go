package nfactor

import (
	"io"

	"nfactor/internal/serve"
	"nfactor/internal/telemetry"
)

// Server is the live serving daemon: a long-running loop pulling
// packets from a Source, pushing verdicts to a Sink, with
// generation-consistent engine hot-swap — see internal/serve for the
// protocol (batch-barrier quiescence, per-packet epoch stamps, state
// carry-over, differential swap gate).
type Server = serve.Server

// ServeConfig tunes a Server (source, sink, batch and window sizes).
type ServeConfig = serve.Config

// SwapRequest asks a running Server to replace its engine generation
// with a freshly synthesized candidate.
type SwapRequest = serve.SwapRequest

// SwapReport is a swap's outcome: applied with a carry-over audit, or
// blocked with the first divergence (down to the diverging guard).
type SwapReport = serve.SwapReport

// ServeStats are the serving loop's generation counters, published
// after every batch (Server.Stats).
type ServeStats = telemetry.ServeStats

// Source feeds packets to a Server; Sink receives each outcome.
type (
	Source  = serve.Source
	Sink    = serve.Sink
	Outcome = serve.Outcome
)

// NewServer builds the initial generation from a candidate (see
// Result.ServeCandidate / ChainResult.ServeCandidate) and a server
// around it. Call Run to serve.
func NewServer(c ServeCandidate, cfg ServeConfig) (*Server, error) {
	return serve.New(c, cfg)
}

// NewTraceSource serves a fixed trace, once or looping (limit bounds
// the total; 0 = once through, or forever when looping).
func NewTraceSource(trace []Packet, loop bool, limit int64) Source {
	return serve.NewTraceSource(trace, loop, limit)
}

// NewReaderSource parses trace lines from a stream (stdin, a pipe).
func NewReaderSource(r io.Reader) Source { return serve.NewReaderSource(r) }

// UDPSource serves packets parsed from UDP datagrams, one trace line
// per datagram. Close it to unblock a draining Server.
type UDPSource = serve.UDPSource

// NewUDPSource listens on addr and returns a Source fed by datagrams.
func NewUDPSource(addr string) (*UDPSource, error) { return serve.NewUDPSource(addr) }

// NewWriterSink renders verdict lines in nfreplay's replay format.
func NewWriterSink(w io.Writer) Sink { return serve.NewWriterSink(w) }
