package nfactor

import (
	"bytes"
	"strings"
	"testing"

	"nfactor/internal/trace"
)

// phaseSpans are the Algorithm 1 phases every traced synthesis must
// record (lines 1-3, 4-5, 6-9, 10, 11-16 respectively).
var phaseSpans = []string{
	"phase slice.pkt",
	"phase statealyzer",
	"phase slice.state",
	"phase se.slice",
	"phase refine",
}

// TestTraceSmoke is the CI trace gate (`make trace`): for every corpus
// NF, a traced analysis must produce valid Chrome trace-event JSON
// containing spans for all five Algorithm 1 phases plus at least one
// per-state exploration span and one per-entry refine span, and every
// model entry must resolve to source-level provenance via WhyEntry.
func TestTraceSmoke(t *testing.T) {
	for _, name := range CorpusNames() {
		t.Run(name, func(t *testing.T) {
			res, err := AnalyzeCorpus(name, Options{Trace: true, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}

			var buf bytes.Buffer
			if err := res.WriteChromeTrace(&buf); err != nil {
				t.Fatalf("WriteChromeTrace: %v", err)
			}
			if err := trace.Validate(buf.Bytes()); err != nil {
				t.Fatalf("invalid Chrome trace JSON: %v", err)
			}

			tree := res.TraceTree(false)
			if !strings.HasPrefix(tree, "pipeline "+name) {
				t.Fatalf("tree does not start with the pipeline root span:\n%s", tree)
			}
			for _, want := range phaseSpans {
				if !strings.Contains(tree, want) {
					t.Fatalf("trace missing %q:\n%s", want, tree)
				}
			}
			if !strings.Contains(tree, "state root") {
				t.Fatalf("trace has no per-state exploration spans:\n%s", tree)
			}
			if !strings.Contains(tree, "refine entry 0") {
				t.Fatalf("trace has no per-entry refine spans:\n%s", tree)
			}

			entries := res.Model().Entries
			if len(entries) == 0 {
				t.Fatal("no model entries")
			}
			for i := range entries {
				why, err := res.WhyEntry(i)
				if err != nil {
					t.Fatalf("WhyEntry(%d): %v", i, err)
				}
				if !strings.Contains(why, "path "+entries[i].PathID) {
					t.Fatalf("WhyEntry(%d) does not cite path %s:\n%s", i, entries[i].PathID, why)
				}
				if !strings.Contains(why, "sliced statements executed:") {
					t.Fatalf("WhyEntry(%d) has no source attribution:\n%s", i, why)
				}
			}
		})
	}
}

// The full pipeline's canonical span tree — phases, per-state spans,
// per-entry refine spans — must be identical at any worker count.
func TestPipelineTraceDeterministicAcrossWorkers(t *testing.T) {
	trees := map[int]string{}
	for _, workers := range []int{1, 4} {
		res, err := AnalyzeCorpus("nat", Options{Trace: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		trees[workers] = res.TraceTree(false)
	}
	if trees[1] != trees[4] {
		t.Fatalf("pipeline span tree differs across worker counts:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", trees[1], trees[4])
	}
}

// Tracing must not change what is synthesized.
func TestTracedModelMatchesUntraced(t *testing.T) {
	plain, err := AnalyzeCorpus("firewall", Options{})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := AnalyzeCorpus("firewall", Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := traced.RenderModel(), plain.RenderModel(); got != want {
		t.Fatalf("traced model differs from untraced:\n--- traced ---\n%s--- plain ---\n%s", got, want)
	}
}
